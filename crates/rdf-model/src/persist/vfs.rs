//! Virtual file system: the narrow I/O surface the storage layer runs on.
//!
//! Two implementations ship:
//!
//! - [`StdVfs`] — real files under a root directory, with `sync_all` after
//!   every mutation so a completed call is durable.
//! - [`MemVfs`] — an in-memory disk with scripted fault injection, the
//!   file-system analogue of the endpoint layer's `FaultyEndpoint`: torn
//!   writes via a crash byte-budget, `ENOSPC`, short reads, and bit flips
//!   at rest. Crash semantics are byte-exact: when the write budget runs
//!   out mid-call, exactly the prefix that "reached the platter" is
//!   applied, and every subsequent operation fails with
//!   [`StorageError::Crashed`] — the surviving disk image is what a real
//!   power cut would leave. Tests reopen it with [`MemVfs::reopen_from`]
//!   (a clean VFS over the surviving image) to drive recovery.
//!
//! The trait is deliberately whole-file + append oriented (no offsets, no
//! handles): that is all the snapshot/WAL design needs, and it keeps every
//! fault point enumerable — each mutating call is one atomic-or-torn unit.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use super::StorageError;

/// The I/O operations the storage layer performs. All paths are flat file
/// names relative to the store root; implementations never interpret them.
pub trait Vfs: Send + Sync {
    /// Read a whole file. `Ok(None)` when the file does not exist.
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>, StorageError>;

    /// Create-or-truncate a file and write `data`, durably.
    fn write(&self, name: &str, data: &[u8]) -> Result<(), StorageError>;

    /// Append `data` to a file (created if absent), durably.
    fn append(&self, name: &str, data: &[u8]) -> Result<(), StorageError>;

    /// Atomically rename `from` onto `to` (replacing `to` if it exists).
    fn rename(&self, from: &str, to: &str) -> Result<(), StorageError>;

    /// Shrink a file to `len` bytes (no-op when already shorter).
    fn truncate(&self, name: &str, len: u64) -> Result<(), StorageError>;

    /// Remove a file; succeeds silently when it does not exist.
    fn remove(&self, name: &str) -> Result<(), StorageError>;

    /// Current length of a file, `Ok(None)` when absent.
    fn len(&self, name: &str) -> Result<Option<u64>, StorageError>;
}

fn io_err(op: &'static str, e: std::io::Error) -> StorageError {
    // ENOSPC surfaces as its own typed error so callers can distinguish
    // "disk full" (retriable after freeing space) from everything else.
    if e.raw_os_error() == Some(28) {
        return StorageError::NoSpace;
    }
    StorageError::Io {
        op,
        detail: e.to_string(),
    }
}

/// Real files under a root directory (created on construction).
pub struct StdVfs {
    root: PathBuf,
}

impl StdVfs {
    /// VFS rooted at `dir`, creating the directory if needed.
    pub fn new(dir: impl AsRef<Path>) -> Result<Self, StorageError> {
        let root = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&root).map_err(|e| io_err("create_dir", e))?;
        Ok(StdVfs { root })
    }

    fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }
}

impl Vfs for StdVfs {
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>, StorageError> {
        match std::fs::read(self.path(name)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(io_err("read", e)),
        }
    }

    fn write(&self, name: &str, data: &[u8]) -> Result<(), StorageError> {
        let mut f = std::fs::File::create(self.path(name)).map_err(|e| io_err("write", e))?;
        f.write_all(data).map_err(|e| io_err("write", e))?;
        f.sync_all().map_err(|e| io_err("write", e))
    }

    fn append(&self, name: &str, data: &[u8]) -> Result<(), StorageError> {
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(self.path(name))
            .map_err(|e| io_err("append", e))?;
        f.write_all(data).map_err(|e| io_err("append", e))?;
        f.sync_all().map_err(|e| io_err("append", e))
    }

    fn rename(&self, from: &str, to: &str) -> Result<(), StorageError> {
        std::fs::rename(self.path(from), self.path(to)).map_err(|e| io_err("rename", e))
    }

    fn truncate(&self, name: &str, len: u64) -> Result<(), StorageError> {
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(self.path(name))
            .map_err(|e| io_err("truncate", e))?;
        f.set_len(len).map_err(|e| io_err("truncate", e))?;
        f.sync_all().map_err(|e| io_err("truncate", e))
    }

    fn remove(&self, name: &str) -> Result<(), StorageError> {
        match std::fs::remove_file(self.path(name)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(io_err("remove", e)),
        }
    }

    fn len(&self, name: &str) -> Result<Option<u64>, StorageError> {
        match std::fs::metadata(self.path(name)) {
            Ok(m) => Ok(Some(m.len())),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(io_err("len", e)),
        }
    }
}

/// Scripted faults for [`MemVfs`]. All budgets count *bytes applied to the
/// disk image* across every mutating call, so a fault plan pins the exact
/// torn-write point deterministically.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// After this many written bytes the process "loses power": the write
    /// in flight keeps only its prefix and every later operation fails
    /// with [`StorageError::Crashed`].
    pub crash_after_bytes: Option<u64>,
    /// After this many written bytes the disk is "full": the write in
    /// flight keeps only its prefix and fails with
    /// [`StorageError::NoSpace`]; the process keeps running and reads
    /// still work.
    pub enospc_after_bytes: Option<u64>,
    /// The next `read` returns at most this many bytes (a short read),
    /// then the limit disarms.
    pub short_read_next: Option<usize>,
}

impl FaultPlan {
    /// No faults — a clean in-memory disk.
    pub fn none() -> Self {
        FaultPlan::default()
    }
}

type Disk = Arc<Mutex<BTreeMap<String, Vec<u8>>>>;

struct FaultState {
    write_budget: Option<u64>,
    enospc_budget: Option<u64>,
    short_read_next: Option<usize>,
    crashed: bool,
    bytes_written: u64,
}

/// In-memory VFS with deterministic fault injection (see the module docs).
pub struct MemVfs {
    disk: Disk,
    state: Mutex<FaultState>,
}

impl Default for MemVfs {
    fn default() -> Self {
        Self::new()
    }
}

impl MemVfs {
    /// Clean in-memory disk, no faults.
    pub fn new() -> Self {
        Self::faulty(FaultPlan::none())
    }

    /// In-memory disk executing a fault plan.
    pub fn faulty(plan: FaultPlan) -> Self {
        MemVfs {
            disk: Arc::new(Mutex::new(BTreeMap::new())),
            state: Mutex::new(FaultState {
                write_budget: plan.crash_after_bytes,
                enospc_budget: plan.enospc_after_bytes,
                short_read_next: plan.short_read_next,
                crashed: false,
                bytes_written: 0,
            }),
        }
    }

    /// A clean VFS over a *copy* of another VFS's surviving disk image —
    /// "the machine rebooted": the old faults are gone, the torn bytes are
    /// not.
    pub fn reopen_from(other: &MemVfs) -> Self {
        let fresh = MemVfs::new();
        *fresh.disk.lock().expect("disk lock") = other.disk.lock().expect("disk lock").clone();
        fresh
    }

    /// Arm (or replace) the fault plan on a live VFS — lets a test build
    /// clean state first and inject faults only for the phase under test.
    /// Budgets count from this call onward; a disk that already crashed
    /// stays crashed.
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        let mut st = self.state.lock().expect("state lock");
        st.write_budget = plan.crash_after_bytes;
        st.enospc_budget = plan.enospc_after_bytes;
        st.short_read_next = plan.short_read_next;
    }

    /// Total bytes applied to the disk image so far (fault-free dry runs
    /// use this to enumerate every possible crash point).
    pub fn bytes_written(&self) -> u64 {
        self.state.lock().expect("state lock").bytes_written
    }

    /// Did the crash budget trip?
    pub fn crashed(&self) -> bool {
        self.state.lock().expect("state lock").crashed
    }

    /// Flip one bit of a file at rest (corruption-at-rest injection;
    /// bypasses fault accounting). Returns `false` when the file is absent
    /// or shorter than `byte`.
    pub fn flip_bit(&self, name: &str, byte: usize, bit: u8) -> bool {
        let mut disk = self.disk.lock().expect("disk lock");
        match disk.get_mut(name).and_then(|f| f.get_mut(byte)) {
            Some(b) => {
                *b ^= 1 << (bit % 8);
                true
            }
            None => false,
        }
    }

    /// Snapshot of the current disk image (file name → contents).
    pub fn disk_image(&self) -> BTreeMap<String, Vec<u8>> {
        self.disk.lock().expect("disk lock").clone()
    }

    /// Charge `want` bytes against the fault budgets. Returns how many
    /// bytes actually reach the disk plus the error to surface (if any).
    fn charge(&self, want: usize) -> (usize, Option<StorageError>) {
        let mut st = self.state.lock().expect("state lock");
        if st.crashed {
            return (0, Some(StorageError::Crashed));
        }
        let want64 = want as u64;
        if let Some(budget) = st.write_budget {
            if budget < want64 {
                st.write_budget = Some(0);
                st.crashed = true;
                st.bytes_written += budget;
                return (budget as usize, Some(StorageError::Crashed));
            }
            st.write_budget = Some(budget - want64);
        }
        if let Some(budget) = st.enospc_budget {
            if budget < want64 {
                st.enospc_budget = Some(0);
                st.bytes_written += budget;
                return (budget as usize, Some(StorageError::NoSpace));
            }
            st.enospc_budget = Some(budget - want64);
        }
        st.bytes_written += want64;
        (want, None)
    }

    fn check_alive(&self) -> Result<(), StorageError> {
        if self.state.lock().expect("state lock").crashed {
            Err(StorageError::Crashed)
        } else {
            Ok(())
        }
    }
}

impl Vfs for MemVfs {
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>, StorageError> {
        self.check_alive()?;
        let limit = self
            .state
            .lock()
            .expect("state lock")
            .short_read_next
            .take();
        let disk = self.disk.lock().expect("disk lock");
        Ok(disk.get(name).map(|f| match limit {
            Some(n) => f[..n.min(f.len())].to_vec(),
            None => f.clone(),
        }))
    }

    fn write(&self, name: &str, data: &[u8]) -> Result<(), StorageError> {
        let (applied, err) = self.charge(data.len());
        if applied > 0 || err.is_none() {
            // Create-or-truncate happens before the torn payload lands —
            // exactly the worst case a crash mid-rewrite produces.
            let mut disk = self.disk.lock().expect("disk lock");
            disk.insert(name.to_string(), data[..applied].to_vec());
        }
        match err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    fn append(&self, name: &str, data: &[u8]) -> Result<(), StorageError> {
        let (applied, err) = self.charge(data.len());
        if applied > 0 || err.is_none() {
            let mut disk = self.disk.lock().expect("disk lock");
            disk.entry(name.to_string())
                .or_default()
                .extend_from_slice(&data[..applied]);
        }
        match err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    fn rename(&self, from: &str, to: &str) -> Result<(), StorageError> {
        // Atomic: either it happened or it did not — no torn middle state.
        self.check_alive()?;
        let mut disk = self.disk.lock().expect("disk lock");
        match disk.remove(from) {
            Some(contents) => {
                disk.insert(to.to_string(), contents);
                Ok(())
            }
            None => Err(StorageError::Io {
                op: "rename",
                detail: format!("no such file: {from}"),
            }),
        }
    }

    fn truncate(&self, name: &str, len: u64) -> Result<(), StorageError> {
        self.check_alive()?;
        let mut disk = self.disk.lock().expect("disk lock");
        match disk.get_mut(name) {
            Some(f) => {
                f.truncate(len as usize);
                Ok(())
            }
            None => Err(StorageError::Io {
                op: "truncate",
                detail: format!("no such file: {name}"),
            }),
        }
    }

    fn remove(&self, name: &str) -> Result<(), StorageError> {
        self.check_alive()?;
        self.disk.lock().expect("disk lock").remove(name);
        Ok(())
    }

    fn len(&self, name: &str) -> Result<Option<u64>, StorageError> {
        self.check_alive()?;
        let disk = self.disk.lock().expect("disk lock");
        Ok(disk.get(name).map(|f| f.len() as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_vfs_basics() {
        let vfs = MemVfs::new();
        assert_eq!(vfs.read("a").unwrap(), None);
        vfs.write("a", b"hello").unwrap();
        vfs.append("a", b" world").unwrap();
        assert_eq!(vfs.read("a").unwrap().unwrap(), b"hello world");
        assert_eq!(vfs.len("a").unwrap(), Some(11));
        vfs.truncate("a", 5).unwrap();
        assert_eq!(vfs.read("a").unwrap().unwrap(), b"hello");
        vfs.rename("a", "b").unwrap();
        assert_eq!(vfs.read("a").unwrap(), None);
        assert_eq!(vfs.read("b").unwrap().unwrap(), b"hello");
        vfs.remove("b").unwrap();
        vfs.remove("b").unwrap(); // idempotent
        assert_eq!(vfs.bytes_written(), 11);
    }

    #[test]
    fn crash_budget_tears_the_write_in_flight() {
        let vfs = MemVfs::faulty(FaultPlan {
            crash_after_bytes: Some(7),
            ..FaultPlan::none()
        });
        vfs.write("a", b"12345").unwrap();
        // 2 bytes of budget left: the append tears after its prefix.
        assert!(matches!(
            vfs.append("a", b"6789"),
            Err(StorageError::Crashed)
        ));
        assert!(vfs.crashed());
        // Everything afterwards is dead.
        assert!(matches!(vfs.read("a"), Err(StorageError::Crashed)));
        assert!(matches!(vfs.write("b", b"x"), Err(StorageError::Crashed)));
        assert!(matches!(vfs.rename("a", "b"), Err(StorageError::Crashed)));
        // The reopened image holds exactly the applied prefix.
        let after = MemVfs::reopen_from(&vfs);
        assert_eq!(after.read("a").unwrap().unwrap(), b"1234567");
        assert!(!after.crashed());
    }

    #[test]
    fn enospc_is_typed_and_nonfatal() {
        let vfs = MemVfs::faulty(FaultPlan {
            enospc_after_bytes: Some(4),
            ..FaultPlan::none()
        });
        assert!(matches!(
            vfs.write("a", b"123456"),
            Err(StorageError::NoSpace)
        ));
        // Process continues: reads work, the torn prefix is visible.
        assert_eq!(vfs.read("a").unwrap().unwrap(), b"1234");
        assert!(!vfs.crashed());
    }

    #[test]
    fn short_read_disarms_after_one_use() {
        let vfs = MemVfs::faulty(FaultPlan {
            short_read_next: Some(3),
            ..FaultPlan::none()
        });
        vfs.write("a", b"123456").unwrap();
        assert_eq!(vfs.read("a").unwrap().unwrap(), b"123");
        assert_eq!(vfs.read("a").unwrap().unwrap(), b"123456");
    }

    #[test]
    fn bit_flip_corrupts_at_rest() {
        let vfs = MemVfs::new();
        vfs.write("a", b"\x00").unwrap();
        assert!(vfs.flip_bit("a", 0, 3));
        assert_eq!(vfs.read("a").unwrap().unwrap(), vec![0b1000]);
        assert!(!vfs.flip_bit("a", 9, 0));
        assert!(!vfs.flip_bit("missing", 0, 0));
    }
}
