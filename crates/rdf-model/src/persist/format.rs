//! The versioned binary snapshot format.
//!
//! # Layout
//!
//! ```text
//! snapshot := magic "RDFSNAP1"            (8 bytes)
//!             body_crc                    (u32 LE, CRC-32/IEEE of body)
//!             body
//! body     := uvarint version (= 1)
//!             uvarint stats_generation
//!             section<terms>              (dataset interner, id order)
//!             uvarint graph_count
//!             graph*                      (sorted by URI)
//! graph    := string uri
//!             uvarint delta_threshold
//!             uvarint compaction_generation
//!             section<terms>              (graph-local interner, id order)
//!             index                       (SPO slab)
//!             index                       (POS slab)
//!             index                       (OSP slab)
//!             section<triples>            (SPO-order delta)
//! index    := uvarint triple_count
//!             uvarint block_count
//!             block_header*               (fixed 24 bytes each, contiguous)
//!             block_payload*              (concatenated)
//! block_header := min_s min_p min_o count payload_len crc   (6 × u32 LE)
//! ```
//!
//! Block headers are a flat array of fixed-size records sorted by their
//! `min` triple — exactly the shape a pager needs to `partition_point` to
//! the block covering a key without touching any payload. Each payload is
//! independently CRC-framed and delta/varint-encoded: the first triple of
//! a block is raw, every later one is a per-component zigzag delta against
//! its predecessor (slab neighbours share long id prefixes, so deltas are
//! mostly one byte).
//!
//! The whole-body CRC makes corruption detection airtight: *any* bit flip
//! anywhere in the file — headers, counts, URIs, payloads — surfaces as a
//! typed [`StorageError::Corrupt`], never as a panic or a silently wrong
//! dataset. The per-block CRCs are redundant with it today but are the
//! unit of verification once blocks are read individually.
//!
//! Term encoding: a tag byte (IRI / blank / plain / lang-tagged / typed
//! literal) followed by length-prefixed UTF-8 strings. Typed-literal
//! decode re-derives the cached [`crate::term::TypedValue`] through
//! [`Literal::typed`], so value semantics survive the round trip.
//!
//! Determinism: every container serialized here iterates in a canonical
//! order (interners in id order, graphs in URI order, slabs as stored), so
//! encoding the same logical dataset twice yields identical bytes — the
//! property behind the "snapshot of a snapshot is byte-identical"
//! guarantee.

use std::sync::Arc;

use crate::dataset::Dataset;
use crate::graph::Graph;
use crate::interner::{Interner, TermId};
use crate::term::{Literal, Term};

use super::StorageError;

/// File magic: 8 bytes, format name + major layout revision.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"RDFSNAP1";
/// Body version written by this encoder.
pub const SNAPSHOT_VERSION: u64 = 1;
/// Triples per index block.
const BLOCK_TRIPLES: usize = 1024;
/// Bytes per index block header (6 × u32 LE).
const BLOCK_HEADER_BYTES: usize = 24;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320) — hand-rolled, no deps.
// Slicing-by-8: eight derived tables let the hot loop consume 8 bytes per
// iteration, which matters because the snapshot verifies a whole-body CRC
// over megabytes before decoding anything.

const fn build_crc_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
}

const CRC_TABLES: [[u32; 256]; 8] = build_crc_tables();

/// CRC-32/IEEE of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = c ^ u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
        c = CRC_TABLES[7][(lo & 0xFF) as usize]
            ^ CRC_TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[4][(lo >> 24) as usize]
            ^ CRC_TABLES[3][(hi & 0xFF) as usize]
            ^ CRC_TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = CRC_TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Varints.

/// Append a LEB128 unsigned varint.
pub fn put_uvarint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Zigzag-map a signed value then varint it.
pub fn put_ivarint(out: &mut Vec<u8>, v: i64) {
    put_uvarint(out, ((v << 1) ^ (v >> 63)) as u64);
}

fn put_u32_le(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_uvarint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// Bounds-checked reader over a byte slice; every failure is a typed
/// [`StorageError::Corrupt`] naming the section being decoded.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    section: &'static str,
}

impl<'a> Reader<'a> {
    /// Reader over `buf`, blaming `section` in error messages.
    pub fn new(buf: &'a [u8], section: &'static str) -> Self {
        Reader {
            buf,
            pos: 0,
            section,
        }
    }

    fn corrupt(&self, detail: impl Into<String>) -> StorageError {
        StorageError::Corrupt {
            section: self.section,
            detail: detail.into(),
        }
    }

    /// Bytes left.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when fully consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Take `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], StorageError> {
        if self.remaining() < n {
            return Err(self.corrupt(format!("need {n} bytes, have {}", self.remaining())));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn byte(&mut self) -> Result<u8, StorageError> {
        Ok(self.take(1)?[0])
    }

    /// Read a LEB128 unsigned varint.
    pub fn uvarint(&mut self) -> Result<u64, StorageError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.byte()?;
            if shift == 63 && b > 1 {
                return Err(self.corrupt("varint overflows u64"));
            }
            v |= u64::from(b & 0x7F) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(self.corrupt("varint too long"));
            }
        }
    }

    /// Read a zigzag signed varint.
    pub fn ivarint(&mut self) -> Result<i64, StorageError> {
        let z = self.uvarint()?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }

    fn u32_le(&mut self) -> Result<u32, StorageError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn str(&mut self) -> Result<&'a str, StorageError> {
        let len = self.uvarint()? as usize;
        if len > self.remaining() {
            return Err(self.corrupt(format!("string length {len} exceeds payload")));
        }
        std::str::from_utf8(self.take(len)?).map_err(|_| self.corrupt("invalid UTF-8 in string"))
    }
}

// ---------------------------------------------------------------------------
// Checksummed sections: uvarint payload_len, u32 crc, payload.

fn put_section(out: &mut Vec<u8>, payload: &[u8]) {
    put_uvarint(out, payload.len() as u64);
    put_u32_le(out, crc32(payload));
    out.extend_from_slice(payload);
}

fn read_section<'a>(r: &mut Reader<'a>, section: &'static str) -> Result<Reader<'a>, StorageError> {
    let len = r.uvarint()? as usize;
    if len > r.remaining() {
        return Err(StorageError::Corrupt {
            section,
            detail: format!("section length {len} exceeds payload"),
        });
    }
    let crc = r.u32_le()?;
    let payload = r.take(len)?;
    if crc32(payload) != crc {
        return Err(StorageError::Corrupt {
            section,
            detail: "checksum mismatch".into(),
        });
    }
    Ok(Reader::new(payload, section))
}

// ---------------------------------------------------------------------------
// Term codec.

const TAG_IRI: u8 = 0;
const TAG_BLANK: u8 = 1;
const TAG_PLAIN: u8 = 2;
const TAG_LANG: u8 = 3;
const TAG_TYPED: u8 = 4;

/// Append one term (tag + length-prefixed strings).
pub fn put_term(out: &mut Vec<u8>, term: &Term) {
    match term {
        Term::Iri(iri) => {
            out.push(TAG_IRI);
            put_str(out, iri);
        }
        Term::Blank(label) => {
            out.push(TAG_BLANK);
            put_str(out, label);
        }
        Term::Literal(lit) => {
            if let Some(lang) = &lit.language {
                out.push(TAG_LANG);
                put_str(out, &lit.lexical);
                put_str(out, lang);
            } else if let Some(dt) = &lit.datatype {
                out.push(TAG_TYPED);
                put_str(out, &lit.lexical);
                put_str(out, dt);
            } else {
                out.push(TAG_PLAIN);
                put_str(out, &lit.lexical);
            }
        }
    }
}

/// Decode one term; typed/lang literals re-derive their cached value view.
pub fn read_term(r: &mut Reader<'_>) -> Result<Term, StorageError> {
    let tag = r.byte()?;
    match tag {
        TAG_IRI => Ok(Term::iri(r.str()?.to_string())),
        TAG_BLANK => Ok(Term::blank(r.str()?.to_string())),
        TAG_PLAIN => Ok(Term::string(r.str()?.to_string())),
        TAG_LANG => {
            let lexical = r.str()?.to_string();
            let lang = r.str()?.to_string();
            Ok(Term::Literal(Literal::lang_string(lexical, lang)))
        }
        TAG_TYPED => {
            let lexical = r.str()?.to_string();
            let dt = r.str()?.to_string();
            Ok(Term::Literal(Literal::typed(lexical, dt)))
        }
        other => Err(r.corrupt(format!("unknown term tag {other}"))),
    }
}

fn encode_interner(interner: &Interner) -> Vec<u8> {
    let mut payload = Vec::new();
    put_uvarint(&mut payload, interner.len() as u64);
    for (_, term) in interner.iter() {
        put_term(&mut payload, term);
    }
    payload
}

fn decode_interner(r: &mut Reader<'_>, section: &'static str) -> Result<Interner, StorageError> {
    let mut sec = read_section(r, section)?;
    let count = sec.uvarint()? as usize;
    // Each term is ≥ 2 bytes (tag + length); a huge count in a short
    // section is corruption, caught before any allocation is sized by it.
    if count > sec.remaining() {
        return Err(StorageError::Corrupt {
            section,
            detail: format!("term count {count} exceeds payload"),
        });
    }
    let mut terms = Vec::with_capacity(count);
    for _ in 0..count {
        terms.push(read_term(&mut sec)?);
    }
    if !sec.is_empty() {
        return Err(StorageError::Corrupt {
            section,
            detail: "trailing bytes after terms".into(),
        });
    }
    Interner::from_terms(terms).ok_or(StorageError::Corrupt {
        section,
        detail: "duplicate term in interner table".into(),
    })
}

// ---------------------------------------------------------------------------
// Index (slab) codec.

type Key = (TermId, TermId, TermId);

fn encode_triples_delta(out: &mut Vec<u8>, triples: &[Key]) {
    let mut prev: Option<Key> = None;
    for &(s, p, o) in triples {
        match prev {
            None => {
                put_uvarint(out, u64::from(s.0));
                put_uvarint(out, u64::from(p.0));
                put_uvarint(out, u64::from(o.0));
            }
            Some((ps, pp, po)) => {
                put_ivarint(out, i64::from(s.0) - i64::from(ps.0));
                put_ivarint(out, i64::from(p.0) - i64::from(pp.0));
                put_ivarint(out, i64::from(o.0) - i64::from(po.0));
            }
        }
        prev = Some((s, p, o));
    }
}

fn read_id(r: &mut Reader<'_>, max_id: u64) -> Result<TermId, StorageError> {
    let v = r.uvarint()?;
    if v >= max_id {
        return Err(r.corrupt(format!("term id {v} out of range (interner has {max_id})")));
    }
    Ok(TermId(v as u32))
}

fn read_id_delta(r: &mut Reader<'_>, prev: TermId, max_id: u64) -> Result<TermId, StorageError> {
    let v = i64::from(prev.0) + r.ivarint()?;
    if v < 0 || v as u64 >= max_id {
        return Err(r.corrupt(format!("term id {v} out of range (interner has {max_id})")));
    }
    Ok(TermId(v as u32))
}

fn decode_triples_delta(
    r: &mut Reader<'_>,
    count: usize,
    max_id: u64,
) -> Result<Vec<Key>, StorageError> {
    // Each triple costs ≥ 3 bytes; reject counts a corrupt header inflated.
    if count > r.remaining() / 3 + 1 {
        return Err(r.corrupt(format!("triple count {count} exceeds payload")));
    }
    let mut triples = Vec::with_capacity(count);
    let mut prev: Option<Key> = None;
    for _ in 0..count {
        let key = match prev {
            None => (
                read_id(r, max_id)?,
                read_id(r, max_id)?,
                read_id(r, max_id)?,
            ),
            Some((ps, pp, po)) => (
                read_id_delta(r, ps, max_id)?,
                read_id_delta(r, pp, max_id)?,
                read_id_delta(r, po, max_id)?,
            ),
        };
        triples.push(key);
        prev = Some(key);
    }
    Ok(triples)
}

fn encode_index(out: &mut Vec<u8>, slab: &[Key]) {
    put_uvarint(out, slab.len() as u64);
    let blocks: Vec<&[Key]> = slab.chunks(BLOCK_TRIPLES).collect();
    put_uvarint(out, blocks.len() as u64);
    let mut payloads = Vec::new();
    for block in &blocks {
        let start = payloads.len();
        encode_triples_delta(&mut payloads, block);
        let payload = &payloads[start..];
        let (min_s, min_p, min_o) = block[0];
        put_u32_le(out, min_s.0);
        put_u32_le(out, min_p.0);
        put_u32_le(out, min_o.0);
        put_u32_le(out, block.len() as u32);
        put_u32_le(out, payload.len() as u32);
        put_u32_le(out, crc32(payload));
    }
    out.extend_from_slice(&payloads);
}

fn decode_index(
    r: &mut Reader<'_>,
    section: &'static str,
    max_id: u64,
) -> Result<Vec<Key>, StorageError> {
    let corrupt = |detail: String| StorageError::Corrupt { section, detail };
    let total = r.uvarint()? as usize;
    let block_count = r.uvarint()? as usize;
    if block_count > r.remaining() / BLOCK_HEADER_BYTES + 1 {
        return Err(corrupt(format!(
            "block count {block_count} exceeds payload"
        )));
    }
    struct Header {
        min: Key,
        count: usize,
        payload_len: usize,
        crc: u32,
    }
    let mut headers = Vec::with_capacity(block_count);
    for _ in 0..block_count {
        let min = (
            TermId(r.u32_le()?),
            TermId(r.u32_le()?),
            TermId(r.u32_le()?),
        );
        let count = r.u32_le()? as usize;
        let payload_len = r.u32_le()? as usize;
        let crc = r.u32_le()?;
        headers.push(Header {
            min,
            count,
            payload_len,
            crc,
        });
    }
    if total > r.remaining() / 3 + 1 {
        return Err(corrupt(format!("triple count {total} exceeds payload")));
    }
    let mut slab: Vec<Key> = Vec::with_capacity(total);
    for h in &headers {
        let payload = r.take(h.payload_len)?;
        if crc32(payload) != h.crc {
            return Err(corrupt("block checksum mismatch".into()));
        }
        let mut block_r = Reader::new(payload, section);
        let triples = decode_triples_delta(&mut block_r, h.count, max_id)?;
        if !block_r.is_empty() {
            return Err(corrupt("trailing bytes in block payload".into()));
        }
        match triples.first() {
            Some(&first) if first == h.min => {}
            _ => return Err(corrupt("block header min diverges from payload".into())),
        }
        slab.extend_from_slice(&triples);
    }
    if slab.len() != total {
        return Err(corrupt(format!(
            "index holds {} triples, header claims {total}",
            slab.len()
        )));
    }
    // The slab contract: strictly ascending. Downstream `partition_point`
    // scans silently misbehave on unsorted data, so a logically corrupt
    // (but CRC-valid) file must be rejected here.
    if slab.windows(2).any(|w| w[0] >= w[1]) {
        return Err(corrupt("slab not strictly ascending".into()));
    }
    Ok(slab)
}

// ---------------------------------------------------------------------------
// Graph + dataset codec.

fn encode_graph(out: &mut Vec<u8>, uri: &str, graph: &Graph) {
    put_str(out, uri);
    put_uvarint(out, graph.delta_threshold() as u64);
    put_uvarint(out, graph.compaction_generation());
    put_section(out, &encode_interner(graph.interner()));
    encode_index(out, graph.spo_slab());
    encode_index(out, graph.pos_slab());
    encode_index(out, graph.osp_slab());
    let delta: Vec<Key> = graph.delta_ids().collect();
    let mut payload = Vec::new();
    put_uvarint(&mut payload, delta.len() as u64);
    encode_triples_delta(&mut payload, &delta);
    put_section(out, &payload);
}

fn decode_graph(r: &mut Reader<'_>) -> Result<(String, Graph), StorageError> {
    let uri = r.str()?.to_string();
    let delta_threshold = r.uvarint()? as usize;
    let compactions = r.uvarint()?;
    let interner = decode_interner(r, "graph interner")?;
    let max_id = interner.len() as u64;
    let spo = decode_index(r, "spo index", max_id)?;
    let pos = decode_index(r, "pos index", max_id)?;
    let osp = decode_index(r, "osp index", max_id)?;
    if pos.len() != spo.len() || osp.len() != spo.len() {
        return Err(StorageError::Corrupt {
            section: "graph",
            detail: "index lengths diverge".into(),
        });
    }
    let mut delta_sec = read_section(r, "delta")?;
    let delta_count = delta_sec.uvarint()? as usize;
    let delta = decode_triples_delta(&mut delta_sec, delta_count, max_id)?;
    if !delta_sec.is_empty() {
        return Err(StorageError::Corrupt {
            section: "delta",
            detail: "trailing bytes after delta triples".into(),
        });
    }
    if delta.windows(2).any(|w| w[0] >= w[1]) {
        return Err(StorageError::Corrupt {
            section: "delta",
            detail: "delta not strictly ascending".into(),
        });
    }
    // Slab/delta disjointness: an overlap would double-count triples.
    if delta.iter().any(|k| spo.binary_search(k).is_ok()) {
        return Err(StorageError::Corrupt {
            section: "delta",
            detail: "delta overlaps slab".into(),
        });
    }
    Ok((
        uri,
        Graph::from_parts(interner, spo, pos, osp, delta, delta_threshold, compactions),
    ))
}

/// Serialize a dataset into snapshot bytes (deterministic: same logical
/// dataset, same bytes).
pub fn encode_dataset(dataset: &Dataset) -> Vec<u8> {
    let mut body = Vec::new();
    put_uvarint(&mut body, SNAPSHOT_VERSION);
    put_uvarint(&mut body, dataset.stats_generation());
    put_section(&mut body, &encode_interner(dataset.interner()));
    let uris: Vec<&str> = dataset.graph_uris().collect();
    put_uvarint(&mut body, uris.len() as u64);
    for uri in uris {
        let graph = dataset.graph(uri).expect("graph_uris yields live graphs");
        encode_graph(&mut body, uri, graph);
    }
    let mut out = Vec::with_capacity(body.len() + 12);
    out.extend_from_slice(SNAPSHOT_MAGIC);
    put_u32_le(&mut out, crc32(&body));
    out.extend_from_slice(&body);
    out
}

/// Decode snapshot bytes back into a dataset. Every malformation — torn
/// file, flipped bit, bad counts, out-of-range ids — is a typed
/// [`StorageError`], never a panic.
pub fn decode_dataset(bytes: &[u8]) -> Result<Dataset, StorageError> {
    let mut r = Reader::new(bytes, "snapshot header");
    let magic = r.take(SNAPSHOT_MAGIC.len())?;
    if magic != SNAPSHOT_MAGIC {
        return Err(StorageError::Corrupt {
            section: "snapshot header",
            detail: "bad magic".into(),
        });
    }
    let body_crc = r.u32_le()?;
    let body = r.take(r.remaining())?;
    if crc32(body) != body_crc {
        return Err(StorageError::Corrupt {
            section: "snapshot body",
            detail: "checksum mismatch".into(),
        });
    }
    let mut r = Reader::new(body, "snapshot body");
    let version = r.uvarint()?;
    if version != SNAPSHOT_VERSION {
        return Err(StorageError::UnsupportedVersion(version));
    }
    let generation = r.uvarint()?;
    let interner = decode_interner(&mut r, "dataset interner")?;
    let graph_count = r.uvarint()? as usize;
    if graph_count > r.remaining() + 1 {
        return Err(StorageError::Corrupt {
            section: "snapshot body",
            detail: format!("graph count {graph_count} exceeds payload"),
        });
    }
    let mut dataset = Dataset::new();
    // Interner first: graph insertion re-interns every graph-local term and
    // must hit the persisted global ids, reproducing the original id maps
    // (including their order-preservation flags) exactly.
    dataset.restore_interner(interner);
    for _ in 0..graph_count {
        let (uri, graph) = decode_graph(&mut r)?;
        if dataset.graph(&uri).is_some() {
            return Err(StorageError::Corrupt {
                section: "graph",
                detail: format!("duplicate graph {uri}"),
            });
        }
        // insert_shared keeps the restored slab/delta split as-is (no
        // compaction), preserving delta-resident graphs bit-for-bit.
        dataset.insert_shared(uri, Arc::new(graph));
    }
    if !r.is_empty() {
        return Err(StorageError::Corrupt {
            section: "snapshot body",
            detail: "trailing bytes after graphs".into(),
        });
    }
    dataset.set_stats_generation(generation);
    Ok(dataset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Triple;

    #[test]
    fn crc32_known_vectors() {
        // Standard CRC-32/IEEE check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn varint_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_uvarint(&mut buf, v);
            let mut r = Reader::new(&buf, "test");
            assert_eq!(r.uvarint().unwrap(), v);
            assert!(r.is_empty());
        }
        for v in [0i64, -1, 1, -64, 64, i64::MIN, i64::MAX] {
            let mut buf = Vec::new();
            put_ivarint(&mut buf, v);
            let mut r = Reader::new(&buf, "test");
            assert_eq!(r.ivarint().unwrap(), v);
        }
    }

    #[test]
    fn term_codec_roundtrip() {
        use crate::vocab::xsd;
        let terms = [
            Term::iri("http://x/a"),
            Term::blank("b0"),
            Term::string("plain"),
            Term::Literal(Literal::lang_string("hallo", "de")),
            Term::Literal(Literal::typed("42", xsd::INTEGER)),
            Term::Literal(Literal::typed("2010-01-01", xsd::DATE_TIME)),
            Term::string("weird \" \\ \n chars ☃"),
        ];
        for t in &terms {
            let mut buf = Vec::new();
            put_term(&mut buf, t);
            let mut r = Reader::new(&buf, "test");
            let back = read_term(&mut r).unwrap();
            assert_eq!(&back, t);
            assert!(r.is_empty());
            // Value semantics must survive (the cached parse is re-derived).
            if let (Term::Literal(a), Term::Literal(b)) = (t, &back) {
                assert_eq!(a.as_f64(), b.as_f64());
            }
        }
    }

    fn sample_dataset() -> Dataset {
        let mut g = Graph::with_delta_threshold(4);
        for i in 0..10 {
            g.insert(&Triple::new(
                Term::iri(format!("http://x/s{i}")),
                Term::iri("http://x/p"),
                Term::integer(i),
            ));
        }
        let mut delta_resident = Graph::with_delta_threshold(100);
        delta_resident.insert(&Triple::new(
            Term::iri("http://x/s1"),
            Term::iri("http://x/q"),
            Term::string("in the delta"),
        ));
        let mut ds = Dataset::new();
        ds.insert_graph("http://a", g);
        ds.insert_shared("http://b", Arc::new(delta_resident));
        ds.append_triples(
            "http://a",
            vec![Triple::new(
                Term::iri("http://x/s0"),
                Term::iri("http://x/q"),
                Term::iri("http://x/s9"),
            )],
        )
        .unwrap();
        ds
    }

    #[test]
    fn dataset_roundtrip_and_byte_stability() {
        let ds = sample_dataset();
        let bytes = encode_dataset(&ds);
        let back = decode_dataset(&bytes).unwrap();
        assert_eq!(back.stats_generation(), ds.stats_generation());
        assert_eq!(
            back.graph_uris().collect::<Vec<_>>(),
            ds.graph_uris().collect::<Vec<_>>()
        );
        for uri in ["http://a", "http://b"] {
            let a = ds.graph(uri).unwrap();
            let b = back.graph(uri).unwrap();
            assert_eq!(a.spo_slab(), b.spo_slab());
            assert_eq!(
                a.delta_ids().collect::<Vec<_>>(),
                b.delta_ids().collect::<Vec<_>>()
            );
            assert_eq!(a.delta_threshold(), b.delta_threshold());
            assert_eq!(a.compaction_generation(), b.compaction_generation());
            assert_eq!(
                ds.id_map(uri).unwrap().order_preserving(),
                back.id_map(uri).unwrap().order_preserving()
            );
        }
        // Snapshot of the snapshot: byte-identical.
        assert_eq!(encode_dataset(&back), bytes);
    }

    #[test]
    fn empty_dataset_roundtrip() {
        let ds = Dataset::new();
        let bytes = encode_dataset(&ds);
        let back = decode_dataset(&bytes).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.stats_generation(), 0);
        assert_eq!(encode_dataset(&back), bytes);
    }

    #[test]
    fn every_bit_flip_is_a_typed_error() {
        let bytes = encode_dataset(&sample_dataset());
        // Exhaustive over bytes, one bit each — any flip must surface as a
        // typed error (the whole-body CRC guarantees detection).
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 1 << (i % 8);
            match decode_dataset(&bad) {
                Err(StorageError::Corrupt { .. }) | Err(StorageError::UnsupportedVersion(_)) => {}
                other => panic!("flip at byte {i}: expected Corrupt, got {other:?}"),
            }
        }
    }

    #[test]
    fn truncations_are_typed_errors() {
        let bytes = encode_dataset(&sample_dataset());
        for len in 0..bytes.len() {
            match decode_dataset(&bytes[..len]) {
                Err(StorageError::Corrupt { .. }) => {}
                other => panic!("truncation to {len}: expected Corrupt, got {other:?}"),
            }
        }
    }

    #[test]
    fn multi_block_index_roundtrip() {
        // Enough triples to span several blocks.
        let mut g = Graph::new();
        for i in 0..(BLOCK_TRIPLES * 2 + 77) {
            g.insert(&Triple::new(
                Term::iri(format!("http://x/s{i:06}")),
                Term::iri("http://x/p"),
                Term::iri(format!("http://x/o{:06}", i / 3)),
            ));
        }
        let mut ds = Dataset::new();
        ds.insert_graph("http://big", g);
        let bytes = encode_dataset(&ds);
        let back = decode_dataset(&bytes).unwrap();
        let a = ds.graph("http://big").unwrap();
        let b = back.graph("http://big").unwrap();
        assert_eq!(a.spo_slab(), b.spo_slab());
        assert_eq!(a.len(), b.len());
        assert_eq!(encode_dataset(&back), bytes);
    }
}
