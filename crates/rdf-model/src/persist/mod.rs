//! Durable, crash-consistent dataset storage.
//!
//! A [`Store`] is a [`Dataset`](crate::Dataset) backed by two files:
//! a checksummed binary **snapshot** (the last checkpoint, see
//! [`format`]) and an append-only **write-ahead log** of mutations since
//! (see [`wal`]). Mutations are logged before they are applied; opening a
//! store replays the log over the snapshot and truncates any torn tail,
//! recovering exactly the state at some committed prefix of the mutation
//! history — never a torn or corrupted in-between.
//!
//! All I/O goes through the [`vfs::Vfs`] trait; [`vfs::StdVfs`] talks to
//! the real file system and [`vfs::MemVfs`] is an in-memory disk with
//! deterministic fault injection (torn writes, `ENOSPC`, short reads, bit
//! flips) that the recovery test-suite drives crashes through.
//!
//! Every failure mode is a typed [`StorageError`]; no input — torn,
//! truncated, or bit-flipped — causes a panic.

pub mod format;
pub mod store;
pub mod vfs;
pub mod wal;

pub use store::{RecoveryReport, Store, StoreStats, SNAPSHOT_FILE, SNAPSHOT_TMP_FILE, WAL_FILE};
pub use vfs::{FaultPlan, MemVfs, StdVfs, Vfs};
pub use wal::WalRecord;

/// Everything that can go wrong in the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// An underlying I/O operation failed.
    Io {
        /// Which operation (`"read"`, `"append"`, ...).
        op: &'static str,
        /// OS error description.
        detail: String,
    },
    /// The device is out of space (`ENOSPC`); retriable once space frees.
    NoSpace,
    /// The (simulated) machine has crashed: every subsequent operation on
    /// this VFS fails until it is reopened.
    Crashed,
    /// Persisted bytes fail validation: checksum mismatch, impossible
    /// counts, out-of-range ids, bad magic.
    Corrupt {
        /// Which part of the file was being decoded.
        section: &'static str,
        /// What was wrong with it.
        detail: String,
    },
    /// The snapshot was written by a format revision this build does not
    /// read.
    UnsupportedVersion(u64),
    /// A mutation targeted a graph the dataset does not contain.
    UnknownGraph(String),
    /// A failed commit could not be rolled back; the store refuses
    /// further mutations (reopen to recover).
    Poisoned,
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Io { op, detail } => write!(f, "i/o error during {op}: {detail}"),
            StorageError::NoSpace => write!(f, "no space left on device"),
            StorageError::Crashed => write!(f, "storage crashed (simulated power loss)"),
            StorageError::Corrupt { section, detail } => {
                write!(f, "corrupt {section}: {detail}")
            }
            StorageError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v}")
            }
            StorageError::UnknownGraph(uri) => write!(f, "unknown graph: {uri}"),
            StorageError::Poisoned => {
                write!(f, "store poisoned by an unrolled-back commit failure")
            }
        }
    }
}

impl std::error::Error for StorageError {}
