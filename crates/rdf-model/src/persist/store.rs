//! The durable store: a [`Dataset`] whose mutations are write-ahead
//! logged and whose state can be checkpointed into a snapshot.
//!
//! # Files
//!
//! | file           | contents                                   |
//! |----------------|--------------------------------------------|
//! | `snapshot.rds` | last checkpoint ([`super::format`] layout) |
//! | `snapshot.tmp` | checkpoint in flight (never read)          |
//! | `wal.log`      | mutations since the checkpoint             |
//!
//! # Protocols
//!
//! **Commit** (insert/append): encode the mutation as a [`WalRecord`],
//! append its frame to `wal.log` (write-ahead), and only then apply it to
//! the in-memory dataset. If the append fails, the in-memory state is
//! untouched and the possibly-torn frame is truncated away; if even that
//! cleanup fails (the "disk" is gone), the store poisons itself and
//! refuses further mutations rather than let memory and log diverge.
//!
//! **Checkpoint**: serialize the dataset to `snapshot.tmp`, atomically
//! rename over `snapshot.rds`, then reset `wal.log` to an empty log. A
//! crash before the rename leaves the old snapshot + full WAL (nothing
//! lost); after the rename, the new snapshot covers every WAL record and
//! replay skips them by generation (replay is idempotent).
//!
//! **Recovery** ([`Store::open`]): load the snapshot if present (absent or
//! zero-length ⇒ fresh dataset), scan the WAL, replay every record whose
//! generation the snapshot does not already cover, truncate any torn
//! tail, and clear a leftover `snapshot.tmp`. The result is exactly the
//! state at some committed prefix of the mutation history — the
//! crash-consistency contract the fault-injection suite enforces.
//!
//! # Canonical mutation order
//!
//! [`Store::insert_graph`] does *not* install the caller's graph object;
//! it logs the graph's triples in canonical (`iter_triples`, SPO) order
//! plus its delta threshold, then applies *the record* — rebuilding the
//! graph by inserting in logged order. Live state is therefore always
//! byte-identical to replayed state (same local interner order, same
//! slab/delta split, same auto-compaction points), which is what lets the
//! recovery tests demand exact equality — down to scan-cost counters —
//! rather than mere set-equality.

use std::sync::Arc;

use crate::dataset::Dataset;
use crate::graph::Graph;
use crate::term::Triple;

use super::format::{decode_dataset, encode_dataset};
use super::vfs::{StdVfs, Vfs};
use super::wal::{self, WalRecord, WAL_MAGIC};
use super::StorageError;

/// Snapshot file name within the store directory.
pub const SNAPSHOT_FILE: &str = "snapshot.rds";
/// In-flight checkpoint file name (write-temp-then-rename).
pub const SNAPSHOT_TMP_FILE: &str = "snapshot.tmp";
/// Write-ahead log file name.
pub const WAL_FILE: &str = "wal.log";

/// What [`Store::open`] found and did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// A snapshot was present and decoded.
    pub snapshot_loaded: bool,
    /// WAL records applied on top of the snapshot.
    pub replayed: usize,
    /// WAL records skipped because the snapshot already covered their
    /// generation (normal after a crash between checkpoint-rename and
    /// WAL reset).
    pub skipped: usize,
    /// Bytes of torn WAL tail truncated away.
    pub torn_bytes_truncated: u64,
}

/// Cumulative durability telemetry over a store's open-to-drop lifetime.
///
/// Counters start at what [`Store::open`] observed (`recoveries`,
/// recovery-time `wal_bytes_truncated`) and grow with use; they are *not*
/// persisted, so a reopened store starts fresh. The serving layer surfaces
/// them so an operator can see the write-path cost (commits vs
/// checkpoints) and whether crashes ever tore the log.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Mutations durably committed through the WAL (append succeeded).
    pub commits: u64,
    /// Checkpoints completed end-to-end (snapshot renamed *and* WAL reset).
    pub checkpoints: u64,
    /// Bytes of WAL discarded as invalid: torn tails cut at recovery plus
    /// torn frames rolled back after a failed commit append.
    pub wal_bytes_truncated: u64,
    /// 1 when [`Store::open`] found prior state to recover (a snapshot, WAL
    /// records to replay or skip, or a torn tail); 0 for a fresh directory.
    pub recoveries: u64,
}

/// A durable, crash-consistent [`Dataset`].
pub struct Store {
    vfs: Arc<dyn Vfs>,
    dataset: Dataset,
    recovery: RecoveryReport,
    stats: StoreStats,
    /// Length of the valid (whole-frame) WAL prefix on disk.
    wal_len: u64,
    /// Set when a failed commit could not be rolled back; all further
    /// mutations refuse with [`StorageError::Poisoned`].
    poisoned: bool,
}

impl Store {
    /// Open (or create) a store in `dir` on the real file system.
    pub fn open_path(dir: impl AsRef<std::path::Path>) -> Result<Store, StorageError> {
        Store::open(Arc::new(StdVfs::new(dir)?))
    }

    /// Open (or create) a store over an arbitrary [`Vfs`], running
    /// recovery: snapshot load, WAL replay, torn-tail truncation.
    pub fn open(vfs: Arc<dyn Vfs>) -> Result<Store, StorageError> {
        let mut recovery = RecoveryReport::default();
        let mut dataset = match vfs.read(SNAPSHOT_FILE)? {
            Some(bytes) if !bytes.is_empty() => {
                let ds = decode_dataset(&bytes)?;
                recovery.snapshot_loaded = true;
                ds
            }
            // Absent or zero-length (torn at the worst moment): fresh.
            _ => Dataset::new(),
        };
        let wal_len = match vfs.read(WAL_FILE)? {
            None => {
                vfs.write(WAL_FILE, WAL_MAGIC)?;
                WAL_MAGIC.len() as u64
            }
            Some(bytes) => {
                let scan = wal::scan(&bytes)?;
                for rec in scan.records {
                    if rec.gen() <= dataset.stats_generation() {
                        recovery.skipped += 1;
                        continue;
                    }
                    Self::apply(&mut dataset, rec)?;
                    recovery.replayed += 1;
                }
                recovery.torn_bytes_truncated = scan.torn_bytes;
                if scan.valid_len == 0 {
                    // The header itself was torn: no frame ever existed,
                    // start the log over.
                    vfs.write(WAL_FILE, WAL_MAGIC)?;
                    WAL_MAGIC.len() as u64
                } else {
                    if scan.torn_bytes > 0 {
                        vfs.truncate(WAL_FILE, scan.valid_len)?;
                    }
                    scan.valid_len
                }
            }
        };
        // A leftover snapshot.tmp is a checkpoint that died before its
        // rename; it was never authoritative.
        vfs.remove(SNAPSHOT_TMP_FILE)?;
        let recovered = recovery.snapshot_loaded
            || recovery.replayed > 0
            || recovery.skipped > 0
            || recovery.torn_bytes_truncated > 0;
        let stats = StoreStats {
            wal_bytes_truncated: recovery.torn_bytes_truncated,
            recoveries: u64::from(recovered),
            ..StoreStats::default()
        };
        Ok(Store {
            vfs,
            dataset,
            recovery,
            stats,
            wal_len,
            poisoned: false,
        })
    }

    /// Apply a WAL record to the dataset — the single mutation path shared
    /// by live commits and recovery replay (see the module docs on
    /// canonical mutation order).
    fn apply(dataset: &mut Dataset, rec: WalRecord) -> Result<(), StorageError> {
        match rec {
            WalRecord::AppendTriples { gen, uri, triples } => {
                if dataset.append_triples(&uri, triples).is_none() {
                    return Err(StorageError::UnknownGraph(uri));
                }
                dataset.set_stats_generation(gen);
            }
            WalRecord::InsertGraph {
                gen,
                uri,
                delta_threshold,
                triples,
            } => {
                let mut graph = Graph::with_delta_threshold(delta_threshold as usize);
                for t in &triples {
                    graph.insert(t);
                }
                // No final compact: the slab/delta split is a deterministic
                // function of (triples, order, threshold), identical on
                // every application of this record.
                dataset.insert_shared(uri, Arc::new(graph));
                dataset.set_stats_generation(gen);
            }
        }
        Ok(())
    }

    /// Write-ahead commit: log the record durably, then apply it. On a
    /// failed append the in-memory dataset is untouched and the torn frame
    /// is truncated away; if the truncate also fails the store poisons.
    fn commit(&mut self, rec: WalRecord) -> Result<(), StorageError> {
        if self.poisoned {
            return Err(StorageError::Poisoned);
        }
        let frame = rec.encode_frame();
        match self.vfs.append(WAL_FILE, &frame) {
            Ok(()) => {
                self.wal_len += frame.len() as u64;
                self.stats.commits += 1;
                Self::apply(&mut self.dataset, rec)
            }
            Err(e) => {
                if self.vfs.truncate(WAL_FILE, self.wal_len).is_err() {
                    self.poisoned = true;
                } else {
                    // The torn frame (up to `frame.len()` bytes of it) is
                    // gone from the log.
                    self.stats.wal_bytes_truncated += frame.len() as u64;
                }
                Err(e)
            }
        }
    }

    /// Durably insert (or replace) a named graph. The graph's triples are
    /// logged in canonical SPO order together with its delta threshold;
    /// the installed graph is rebuilt from the log record.
    pub fn insert_graph(&mut self, uri: &str, graph: &Graph) -> Result<(), StorageError> {
        let rec = WalRecord::InsertGraph {
            gen: self.dataset.stats_generation() + 1,
            uri: uri.to_string(),
            delta_threshold: graph.delta_threshold() as u64,
            triples: graph.iter_triples().collect(),
        };
        self.commit(rec)
    }

    /// Durably append a batch of triples to an existing graph. Fails with
    /// [`StorageError::UnknownGraph`] — before anything is logged — when
    /// the graph does not exist.
    pub fn append_triples(&mut self, uri: &str, triples: Vec<Triple>) -> Result<(), StorageError> {
        if self.poisoned {
            return Err(StorageError::Poisoned);
        }
        if self.dataset.graph(uri).is_none() {
            return Err(StorageError::UnknownGraph(uri.to_string()));
        }
        let rec = WalRecord::AppendTriples {
            gen: self.dataset.stats_generation() + 1,
            uri: uri.to_string(),
            triples,
        };
        self.commit(rec)
    }

    /// Checkpoint: serialize the dataset, atomically swap it in as the
    /// snapshot, then reset the WAL. Crash-safe at every step — see the
    /// module docs for the failure analysis.
    pub fn checkpoint(&mut self) -> Result<(), StorageError> {
        if self.poisoned {
            return Err(StorageError::Poisoned);
        }
        let bytes = encode_dataset(&self.dataset);
        self.vfs.write(SNAPSHOT_TMP_FILE, &bytes)?;
        self.vfs.rename(SNAPSHOT_TMP_FILE, SNAPSHOT_FILE)?;
        // From here the snapshot covers every WAL record (replay would skip
        // them all), but the log must be reset before further commits: a
        // torn half-written header with frames appended after it would not
        // scan. If the reset fails, poison rather than risk that state.
        match self.vfs.write(WAL_FILE, WAL_MAGIC) {
            Ok(()) => {
                self.wal_len = WAL_MAGIC.len() as u64;
                self.stats.checkpoints += 1;
                Ok(())
            }
            Err(e) => {
                self.poisoned = true;
                Err(e)
            }
        }
    }

    /// The live dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// A shareable clone of the live dataset (e.g. to hand to an engine).
    pub fn shared_dataset(&self) -> Arc<Dataset> {
        Arc::new(self.dataset.clone())
    }

    /// What recovery found when this store was opened.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Durability telemetry accumulated since this store was opened.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Length of the valid WAL prefix on disk (magic + whole frames).
    pub fn wal_len(&self) -> u64 {
        self.wal_len
    }

    /// True when a failed commit could not be rolled back and the store
    /// now refuses mutations.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persist::vfs::{FaultPlan, MemVfs};
    use crate::term::Term;

    fn triple(i: i64) -> Triple {
        Triple::new(
            Term::iri(format!("http://x/s{i}")),
            Term::iri("http://x/p"),
            Term::integer(i),
        )
    }

    fn small_graph(n: i64) -> Graph {
        let mut g = Graph::new();
        for i in 0..n {
            g.insert(&triple(i));
        }
        g
    }

    #[test]
    fn fresh_open_is_empty_and_usable() {
        let vfs = Arc::new(MemVfs::new());
        let mut store = Store::open(vfs.clone()).unwrap();
        assert!(store.dataset().is_empty());
        assert!(!store.recovery().snapshot_loaded);
        store.insert_graph("http://g", &small_graph(3)).unwrap();
        assert_eq!(store.dataset().graph("http://g").unwrap().len(), 3);
        // Reopen picks the mutation up from the WAL alone.
        let store2 = Store::open(Arc::new(MemVfs::reopen_from(&vfs))).unwrap();
        assert_eq!(store2.recovery().replayed, 1);
        assert_eq!(store2.dataset().graph("http://g").unwrap().len(), 3);
        assert_eq!(
            store2.dataset().stats_generation(),
            store.dataset().stats_generation()
        );
    }

    #[test]
    fn checkpoint_then_reopen_replays_nothing() {
        let vfs = Arc::new(MemVfs::new());
        let mut store = Store::open(vfs.clone()).unwrap();
        store.insert_graph("http://g", &small_graph(5)).unwrap();
        store.append_triples("http://g", vec![triple(10)]).unwrap();
        store.checkpoint().unwrap();
        assert_eq!(store.wal_len(), WAL_MAGIC.len() as u64);
        let store2 = Store::open(Arc::new(MemVfs::reopen_from(&vfs))).unwrap();
        assert!(store2.recovery().snapshot_loaded);
        assert_eq!(store2.recovery().replayed, 0);
        assert_eq!(store2.dataset().graph("http://g").unwrap().len(), 6);
        assert_eq!(
            store2.dataset().stats_generation(),
            store.dataset().stats_generation()
        );
    }

    #[test]
    fn live_state_equals_replayed_state_exactly() {
        let vfs = Arc::new(MemVfs::new());
        let mut store = Store::open(vfs.clone()).unwrap();
        // Low threshold so auto-compaction fires mid-rebuild.
        store
            .insert_graph("http://g", &{
                let mut g = Graph::with_delta_threshold(4);
                for i in 0..20 {
                    g.insert(&triple(i));
                }
                g
            })
            .unwrap();
        store
            .append_triples("http://g", (20..30).map(triple).collect())
            .unwrap();
        let store2 = Store::open(Arc::new(MemVfs::reopen_from(&vfs))).unwrap();
        let a = store.dataset().graph("http://g").unwrap();
        let b = store2.dataset().graph("http://g").unwrap();
        assert_eq!(a.spo_slab(), b.spo_slab());
        assert_eq!(
            a.delta_ids().collect::<Vec<_>>(),
            b.delta_ids().collect::<Vec<_>>()
        );
        assert_eq!(a.compaction_generation(), b.compaction_generation());
        assert_eq!(
            store
                .dataset()
                .id_map("http://g")
                .unwrap()
                .order_preserving(),
            store2
                .dataset()
                .id_map("http://g")
                .unwrap()
                .order_preserving()
        );
    }

    #[test]
    fn append_to_unknown_graph_is_typed_and_unlogged() {
        let vfs = Arc::new(MemVfs::new());
        let mut store = Store::open(vfs.clone()).unwrap();
        let before = store.wal_len();
        let err = store.append_triples("http://nope", vec![triple(1)]);
        assert!(matches!(err, Err(StorageError::UnknownGraph(_))));
        assert_eq!(store.wal_len(), before);
    }

    #[test]
    fn failed_append_rolls_the_log_back() {
        // Budget lets open() write the magic, then the first commit tears.
        let vfs = Arc::new(MemVfs::faulty(FaultPlan {
            enospc_after_bytes: Some(WAL_MAGIC.len() as u64 + 10),
            ..FaultPlan::none()
        }));
        let mut store = Store::open(vfs.clone()).unwrap();
        let err = store.insert_graph("http://g", &small_graph(3));
        assert!(matches!(err, Err(StorageError::NoSpace)));
        // Memory untouched, log truncated back to whole frames.
        assert!(store.dataset().is_empty());
        assert!(!store.is_poisoned());
        assert_eq!(store.stats().commits, 0);
        assert!(store.stats().wal_bytes_truncated > 0);
        assert_eq!(
            vfs.len(WAL_FILE).unwrap(),
            Some(WAL_MAGIC.len() as u64),
            "torn frame must be truncated away"
        );
        // The store keeps working once space is back (budget exhausted ⇒
        // further writes tear at 0 bytes... so reopen instead).
        let store2 = Store::open(Arc::new(MemVfs::reopen_from(&vfs))).unwrap();
        assert!(store2.dataset().is_empty());
    }

    #[test]
    fn crash_mid_commit_poisons_and_reopen_recovers() {
        let vfs = Arc::new(MemVfs::faulty(FaultPlan {
            crash_after_bytes: Some(WAL_MAGIC.len() as u64 + 10),
            ..FaultPlan::none()
        }));
        let mut store = Store::open(vfs.clone()).unwrap();
        let err = store.insert_graph("http://g", &small_graph(3));
        assert!(matches!(err, Err(StorageError::Crashed)));
        // Rollback truncate also crashed: store is poisoned.
        assert!(store.is_poisoned());
        assert!(matches!(
            store.append_triples("http://g", vec![triple(1)]),
            Err(StorageError::Poisoned)
        ));
        // The torn frame is on disk; recovery cuts it away.
        let store2 = Store::open(Arc::new(MemVfs::reopen_from(&vfs))).unwrap();
        assert!(store2.dataset().is_empty());
        assert!(store2.recovery().torn_bytes_truncated > 0);
        assert_eq!(store2.stats().recoveries, 1);
        assert_eq!(
            store2.stats().wal_bytes_truncated,
            store2.recovery().torn_bytes_truncated
        );
    }

    #[test]
    fn store_stats_account_commits_checkpoints_and_recoveries() {
        let vfs = Arc::new(MemVfs::new());
        let mut store = Store::open(vfs.clone()).unwrap();
        assert_eq!(store.stats(), StoreStats::default());
        store.insert_graph("http://g", &small_graph(3)).unwrap();
        store.append_triples("http://g", vec![triple(10)]).unwrap();
        assert_eq!(store.stats().commits, 2);
        assert_eq!(store.stats().checkpoints, 0);
        store.checkpoint().unwrap();
        let s = store.stats();
        assert_eq!(s.checkpoints, 1);
        assert!(s.checkpoints <= s.commits);
        assert_eq!(s.recoveries, 0, "a fresh directory is not a recovery");
        // Counters are per-lifetime: a reopen observes one recovery and
        // starts the mutation counters over.
        let store2 = Store::open(Arc::new(MemVfs::reopen_from(&vfs))).unwrap();
        let s2 = store2.stats();
        assert_eq!(s2.recoveries, 1);
        assert_eq!(s2.commits, 0);
        assert_eq!(s2.checkpoints, 0);
    }

    #[test]
    fn leftover_tmp_snapshot_is_discarded() {
        let vfs = Arc::new(MemVfs::new());
        let mut store = Store::open(vfs.clone()).unwrap();
        store.insert_graph("http://g", &small_graph(2)).unwrap();
        store.checkpoint().unwrap();
        // Simulate a later checkpoint dying after the tmp write.
        vfs.write(SNAPSHOT_TMP_FILE, b"half a snapshot").unwrap();
        let reopened_vfs = Arc::new(MemVfs::reopen_from(&vfs));
        let store2 = Store::open(reopened_vfs.clone()).unwrap();
        assert_eq!(store2.dataset().graph("http://g").unwrap().len(), 2);
        assert_eq!(reopened_vfs.read(SNAPSHOT_TMP_FILE).unwrap(), None);
    }

    #[test]
    fn corrupt_snapshot_is_a_typed_error() {
        let vfs = Arc::new(MemVfs::new());
        let mut store = Store::open(vfs.clone()).unwrap();
        store.insert_graph("http://g", &small_graph(4)).unwrap();
        store.checkpoint().unwrap();
        assert!(vfs.flip_bit(SNAPSHOT_FILE, 40, 2));
        let err = Store::open(Arc::new(MemVfs::reopen_from(&vfs)));
        assert!(matches!(err, Err(StorageError::Corrupt { .. })));
    }

    #[test]
    fn zero_length_snapshot_opens_fresh() {
        let vfs = Arc::new(MemVfs::new());
        vfs.write(SNAPSHOT_FILE, b"").unwrap();
        let store = Store::open(vfs).unwrap();
        assert!(store.dataset().is_empty());
        assert!(!store.recovery().snapshot_loaded);
    }
}
