//! The append-only write-ahead log.
//!
//! # Framing
//!
//! ```text
//! wal    := magic "RDFWAL01"          (8 bytes)
//!           frame*
//! frame  := payload_len (u32 LE)
//!           payload_crc (u32 LE, CRC-32/IEEE)
//!           payload
//! ```
//!
//! Each frame holds one [`WalRecord`] — a mutation batch stamped with the
//! `stats_generation` the dataset reaches once the batch applies. Records
//! are written *before* the in-memory mutation (write-ahead), so a frame's
//! presence proves intent; its CRC proves completeness.
//!
//! # Torn tails and prefix consistency
//!
//! A crash mid-append leaves a torn final frame: short header, short
//! payload, or CRC mismatch. [`scan`] decodes the longest valid prefix of
//! whole frames and reports `valid_len` — the byte offset the store
//! truncates back to on recovery. Everything before the tear is replayed;
//! the tear itself is discarded. A torn *file header* (fewer than 8 bytes)
//! means the store crashed while creating the log before any record could
//! exist, so it recovers as empty. A full-length header that isn't the
//! magic is not a tear — it's corruption, and surfaces as a typed error
//! rather than silent data loss.

use crate::term::Triple;

use super::format::{put_term, put_uvarint, read_term, Reader};
use super::StorageError;

/// File magic for the write-ahead log.
pub const WAL_MAGIC: &[u8; 8] = b"RDFWAL01";

const REC_APPEND: u8 = 0;
const REC_INSERT_GRAPH: u8 = 1;

/// One logged mutation batch. `gen` is the dataset's `stats_generation`
/// *after* the batch applies; replay skips records whose generation the
/// snapshot already covers.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// `Dataset::append_triples` on an existing graph.
    AppendTriples {
        /// Post-apply stats generation.
        gen: u64,
        /// Target graph URI.
        uri: String,
        /// The appended batch, in append order.
        triples: Vec<Triple>,
    },
    /// `Dataset::insert_graph`, logged in canonical (SPO-sorted) order.
    InsertGraph {
        /// Post-apply stats generation.
        gen: u64,
        /// Graph URI.
        uri: String,
        /// Delta threshold the rebuilt graph must use.
        delta_threshold: u64,
        /// The graph's triples in `iter_triples` (SPO) order.
        triples: Vec<Triple>,
    },
}

impl WalRecord {
    /// The post-apply stats generation this record carries.
    pub fn gen(&self) -> u64 {
        match self {
            WalRecord::AppendTriples { gen, .. } | WalRecord::InsertGraph { gen, .. } => *gen,
        }
    }

    fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let (tag, gen, uri, triples) = match self {
            WalRecord::AppendTriples { gen, uri, triples } => (REC_APPEND, *gen, uri, triples),
            WalRecord::InsertGraph {
                gen, uri, triples, ..
            } => (REC_INSERT_GRAPH, *gen, uri, triples),
        };
        out.push(tag);
        put_uvarint(&mut out, gen);
        put_uvarint(&mut out, uri.len() as u64);
        out.extend_from_slice(uri.as_bytes());
        if let WalRecord::InsertGraph {
            delta_threshold, ..
        } = self
        {
            put_uvarint(&mut out, *delta_threshold);
        }
        put_uvarint(&mut out, triples.len() as u64);
        for t in triples {
            put_term(&mut out, &t.subject);
            put_term(&mut out, &t.predicate);
            put_term(&mut out, &t.object);
        }
        out
    }

    /// Frame this record for appending: `[len][crc][payload]`.
    pub fn encode_frame(&self) -> Vec<u8> {
        let payload = self.encode_payload();
        let mut out = Vec::with_capacity(payload.len() + 8);
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&super::format::crc32(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    fn decode_payload(payload: &[u8]) -> Result<WalRecord, StorageError> {
        let mut r = Reader::new(payload, "wal record");
        let tag = r.take(1)?[0];
        let gen = r.uvarint()?;
        let uri_len = r.uvarint()? as usize;
        let uri = std::str::from_utf8(r.take(uri_len)?)
            .map_err(|_| StorageError::Corrupt {
                section: "wal record",
                detail: "invalid UTF-8 in graph URI".into(),
            })?
            .to_string();
        let delta_threshold = if tag == REC_INSERT_GRAPH {
            r.uvarint()?
        } else {
            0
        };
        let count = r.uvarint()? as usize;
        if count > r.remaining() / 3 + 1 {
            return Err(StorageError::Corrupt {
                section: "wal record",
                detail: format!("triple count {count} exceeds payload"),
            });
        }
        let mut triples = Vec::with_capacity(count);
        for _ in 0..count {
            let subject = read_term(&mut r)?;
            let predicate = read_term(&mut r)?;
            let object = read_term(&mut r)?;
            triples.push(Triple {
                subject,
                predicate,
                object,
            });
        }
        if !r.is_empty() {
            return Err(StorageError::Corrupt {
                section: "wal record",
                detail: "trailing bytes after triples".into(),
            });
        }
        match tag {
            REC_APPEND => Ok(WalRecord::AppendTriples { gen, uri, triples }),
            REC_INSERT_GRAPH => Ok(WalRecord::InsertGraph {
                gen,
                uri,
                delta_threshold,
                triples,
            }),
            other => Err(StorageError::Corrupt {
                section: "wal record",
                detail: format!("unknown record tag {other}"),
            }),
        }
    }
}

/// Result of scanning a WAL image: the decoded whole-frame prefix and how
/// much of the file it spans.
#[derive(Debug)]
pub struct WalScan {
    /// Records in the valid prefix, in log order.
    pub records: Vec<WalRecord>,
    /// Byte length of the valid prefix (magic + whole frames). Recovery
    /// truncates the file to this length.
    pub valid_len: u64,
    /// Bytes past `valid_len` — the torn tail (0 when the log is clean).
    pub torn_bytes: u64,
}

/// Scan a WAL image, decoding the longest valid prefix.
///
/// Torn tails (incomplete final frame) are expected after a crash and are
/// reported, not errored. A present-but-wrong magic *is* an error: the
/// file exists and is whole enough to judge, and it is not our log.
pub fn scan(bytes: &[u8]) -> Result<WalScan, StorageError> {
    if bytes.len() < WAL_MAGIC.len() {
        // Torn during initial header write: no frame can exist yet.
        return Ok(WalScan {
            records: Vec::new(),
            valid_len: 0,
            torn_bytes: bytes.len() as u64,
        });
    }
    if &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Err(StorageError::Corrupt {
            section: "wal header",
            detail: "bad magic".into(),
        });
    }
    let mut records = Vec::new();
    let mut pos = WAL_MAGIC.len();
    loop {
        let rest = &bytes[pos..];
        if rest.is_empty() {
            break;
        }
        if rest.len() < 8 {
            break; // torn frame header
        }
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
        let crc = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
        if rest.len() < 8 + len {
            break; // torn payload
        }
        let payload = &rest[8..8 + len];
        if super::format::crc32(payload) != crc {
            break; // torn or bit-rotted frame: cut here, keep the prefix
        }
        match WalRecord::decode_payload(payload) {
            Ok(rec) => records.push(rec),
            // CRC passed but the payload doesn't parse — treat as a tear
            // boundary too: everything before it is intact and replayable.
            Err(_) => break,
        }
        pos += 8 + len;
    }
    Ok(WalScan {
        valid_len: pos as u64,
        torn_bytes: (bytes.len() - pos) as u64,
        records,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;

    fn rec(gen: u64) -> WalRecord {
        WalRecord::AppendTriples {
            gen,
            uri: "http://g".into(),
            triples: vec![Triple::new(
                Term::iri("http://x/s"),
                Term::iri("http://x/p"),
                Term::integer(gen as i64),
            )],
        }
    }

    fn log_of(records: &[WalRecord]) -> Vec<u8> {
        let mut bytes = WAL_MAGIC.to_vec();
        for r in records {
            bytes.extend_from_slice(&r.encode_frame());
        }
        bytes
    }

    #[test]
    fn roundtrip_multiple_records() {
        let recs = vec![
            rec(1),
            WalRecord::InsertGraph {
                gen: 2,
                uri: "http://h".into(),
                delta_threshold: 8192,
                triples: vec![Triple::new(
                    Term::iri("http://x/a"),
                    Term::iri("http://x/b"),
                    Term::string("v"),
                )],
            },
            rec(3),
        ];
        let bytes = log_of(&recs);
        let scan = scan(&bytes).unwrap();
        assert_eq!(scan.records, recs);
        assert_eq!(scan.valid_len, bytes.len() as u64);
        assert_eq!(scan.torn_bytes, 0);
    }

    #[test]
    fn every_truncation_recovers_a_prefix() {
        let recs = vec![rec(1), rec(2), rec(3)];
        let bytes = log_of(&recs);
        for cut in 0..bytes.len() {
            let scan = scan(&bytes[..cut]).unwrap();
            // The recovered records are exactly some prefix of the input.
            assert!(scan.records.len() <= recs.len());
            assert_eq!(scan.records[..], recs[..scan.records.len()]);
            assert!(scan.valid_len as usize <= cut);
            assert_eq!(scan.torn_bytes as usize, cut - scan.valid_len as usize);
        }
    }

    #[test]
    fn corrupt_frame_cuts_the_log_there() {
        let recs = vec![rec(1), rec(2), rec(3)];
        let mut bytes = log_of(&recs);
        // Flip a bit inside the second frame's payload.
        let first_len = WAL_MAGIC.len() + rec(1).encode_frame().len();
        bytes[first_len + 12] ^= 0x40;
        let scan = scan(&bytes).unwrap();
        assert_eq!(scan.records, vec![rec(1)]);
        assert_eq!(scan.valid_len as usize, first_len);
        assert!(scan.torn_bytes > 0);
    }

    #[test]
    fn wrong_magic_is_corruption_not_a_tear() {
        let err = scan(b"NOTAWAL0rest").unwrap_err();
        assert!(matches!(err, StorageError::Corrupt { .. }));
    }

    #[test]
    fn short_header_recovers_empty() {
        let scan = scan(b"RDF").unwrap();
        assert!(scan.records.is_empty());
        assert_eq!(scan.valid_len, 0);
        assert_eq!(scan.torn_bytes, 3);
    }
}
