//! RDF terms: IRIs, blank nodes, and literals with XSD value typing.
//!
//! Literal comparison follows SPARQL operator semantics: numeric literals
//! compare by value across numeric datatypes, `xsd:dateTime` by timestamp,
//! strings lexically. [`Literal::parsed`] caches the typed value at
//! construction so comparisons in query evaluation don't re-parse.

use std::borrow::Cow;
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

use crate::vocab::xsd;

/// A parsed, typed view of a literal's lexical form.
///
/// Stored alongside the lexical form so evaluation never re-parses. `Unknown`
/// covers datatypes we don't natively interpret (compared lexically).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TypedValue {
    /// Integer-family XSD types (`xsd:integer`, `xsd:int`, `xsd:long`, ...).
    Integer(i64),
    /// `xsd:decimal`, `xsd:double`, `xsd:float`.
    Double(f64),
    /// `xsd:boolean`.
    Boolean(bool),
    /// `xsd:dateTime` / `xsd:date`, as seconds since the epoch (proleptic
    /// Gregorian, UTC). Enough fidelity for `YEAR()` and ordering.
    DateTime(i64),
    /// Plain / `xsd:string` / language-tagged strings, and anything we don't
    /// interpret numerically.
    String,
}

/// An RDF literal: lexical form plus optional language tag or datatype IRI.
#[derive(Debug, Clone)]
pub struct Literal {
    /// The lexical form.
    pub lexical: Arc<str>,
    /// Language tag (mutually exclusive with a non-string datatype).
    pub language: Option<Arc<str>>,
    /// Datatype IRI; `None` means plain literal (treated as `xsd:string`).
    pub datatype: Option<Arc<str>>,
    /// Cached typed interpretation of the lexical form.
    pub parsed: TypedValue,
}

impl PartialEq for Literal {
    fn eq(&self, other: &Self) -> bool {
        self.lexical == other.lexical
            && self.language == other.language
            && self.datatype == other.datatype
    }
}

impl Eq for Literal {}

impl std::hash::Hash for Literal {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.lexical.hash(state);
        self.language.hash(state);
        self.datatype.hash(state);
    }
}

/// Parse `YYYY-MM-DD[Thh:mm:ss[Z]]` into epoch seconds. Returns `None` for
/// malformed input. Supports negative years (astronomical numbering).
fn parse_datetime(s: &str) -> Option<i64> {
    let (date_part, time_part) = match s.find('T') {
        Some(i) => (&s[..i], Some(&s[i + 1..])),
        None => (s, None),
    };
    let negative = date_part.starts_with('-');
    let dp = if negative { &date_part[1..] } else { date_part };
    let mut it = dp.splitn(3, '-');
    let year: i64 = it.next()?.parse().ok()?;
    let year = if negative { -year } else { year };
    let month: i64 = it.next()?.parse().ok()?;
    let day: i64 = it.next()?.parse().ok()?;
    if !(1..=12).contains(&month) || !(1..=31).contains(&day) {
        return None;
    }
    let (h, m, sec) = match time_part {
        Some(t) => {
            let t = t.trim_end_matches('Z');
            // Drop timezone offsets like +02:00 for simplicity.
            let t = match t.rfind(['+']) {
                Some(i) => &t[..i],
                None => t,
            };
            let mut ti = t.splitn(3, ':');
            let h: i64 = ti.next()?.parse().ok()?;
            let m: i64 = ti.next().unwrap_or("0").parse().ok()?;
            let s: f64 = ti.next().unwrap_or("0").parse().ok()?;
            (h, m, s as i64)
        }
        None => (0, 0, 0),
    };
    // Days since epoch via the civil-from-days inverse (Howard Hinnant's
    // algorithm), which handles leap years exactly.
    let y = if month <= 2 { year - 1 } else { year };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let mp = (month + 9) % 12;
    let doy = (153 * mp + 2) / 5 + day - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    let days = era * 146_097 + doe - 719_468;
    Some(days * 86_400 + h * 3_600 + m * 60 + sec)
}

/// Extract the year back out of epoch seconds (inverse of the date part of
/// the dateTime parser).
pub fn year_of_epoch(secs: i64) -> i64 {
    let days = secs.div_euclid(86_400);
    let z = days + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let month = if mp < 10 { mp + 3 } else { mp - 9 };
    if month <= 2 {
        y + 1
    } else {
        y
    }
}

fn classify(lexical: &str, language: Option<&str>, datatype: Option<&str>) -> TypedValue {
    if language.is_some() {
        return TypedValue::String;
    }
    match datatype {
        None => TypedValue::String,
        Some(dt) => {
            if xsd::is_integer_type(dt) {
                lexical
                    .parse::<i64>()
                    .map(TypedValue::Integer)
                    .unwrap_or(TypedValue::String)
            } else if xsd::is_decimal_type(dt) {
                lexical
                    .parse::<f64>()
                    .map(TypedValue::Double)
                    .unwrap_or(TypedValue::String)
            } else if dt == xsd::BOOLEAN {
                match lexical {
                    "true" | "1" => TypedValue::Boolean(true),
                    "false" | "0" => TypedValue::Boolean(false),
                    _ => TypedValue::String,
                }
            } else if dt == xsd::DATE_TIME || dt == xsd::DATE || dt == xsd::G_YEAR {
                match dt {
                    d if d == xsd::G_YEAR => lexical
                        .parse::<i64>()
                        .ok()
                        .and_then(|y| parse_datetime(&format!("{y}-01-01")))
                        .map(TypedValue::DateTime)
                        .unwrap_or(TypedValue::String),
                    _ => parse_datetime(lexical)
                        .map(TypedValue::DateTime)
                        .unwrap_or(TypedValue::String),
                }
            } else {
                TypedValue::String
            }
        }
    }
}

impl Literal {
    /// Plain string literal.
    pub fn string(s: impl Into<Arc<str>>) -> Self {
        let lexical = s.into();
        Literal {
            lexical,
            language: None,
            datatype: None,
            parsed: TypedValue::String,
        }
    }

    /// Language-tagged string.
    pub fn lang_string(s: impl Into<Arc<str>>, lang: impl Into<Arc<str>>) -> Self {
        Literal {
            lexical: s.into(),
            language: Some(lang.into()),
            datatype: None,
            parsed: TypedValue::String,
        }
    }

    /// `xsd:integer` literal.
    pub fn integer(v: i64) -> Self {
        Literal {
            lexical: v.to_string().into(),
            language: None,
            datatype: Some(xsd::INTEGER.into()),
            parsed: TypedValue::Integer(v),
        }
    }

    /// `xsd:double` literal.
    pub fn double(v: f64) -> Self {
        Literal {
            lexical: v.to_string().into(),
            language: None,
            datatype: Some(xsd::DOUBLE.into()),
            parsed: TypedValue::Double(v),
        }
    }

    /// `xsd:boolean` literal.
    pub fn boolean(v: bool) -> Self {
        Literal {
            lexical: if v { "true" } else { "false" }.into(),
            language: None,
            datatype: Some(xsd::BOOLEAN.into()),
            parsed: TypedValue::Boolean(v),
        }
    }

    /// `xsd:dateTime` literal from a `YYYY-MM-DDThh:mm:ss` lexical form.
    pub fn date_time(lexical: impl Into<Arc<str>>) -> Self {
        Literal::typed(lexical, xsd::DATE_TIME)
    }

    /// Typed literal with an arbitrary datatype IRI.
    pub fn typed(lexical: impl Into<Arc<str>>, datatype: impl Into<Arc<str>>) -> Self {
        let lexical = lexical.into();
        let datatype = datatype.into();
        let parsed = classify(&lexical, None, Some(&datatype));
        Literal {
            lexical,
            language: None,
            datatype: Some(datatype),
            parsed,
        }
    }

    /// The effective datatype IRI (plain literals are `xsd:string`).
    pub fn datatype_iri(&self) -> &str {
        if self.language.is_some() {
            "http://www.w3.org/1999/02/22-rdf-syntax-ns#langString"
        } else {
            self.datatype.as_deref().unwrap_or(xsd::STRING)
        }
    }

    /// Is this literal numeric (integer or double family)?
    pub fn is_numeric(&self) -> bool {
        matches!(self.parsed, TypedValue::Integer(_) | TypedValue::Double(_))
    }

    /// Numeric view if the literal is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self.parsed {
            TypedValue::Integer(i) => Some(i as f64),
            TypedValue::Double(d) => Some(d),
            _ => None,
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "\"{}\"", escape_literal(&self.lexical))?;
        if let Some(lang) = &self.language {
            write!(f, "@{lang}")
        } else if let Some(dt) = &self.datatype {
            write!(f, "^^<{dt}>")
        } else {
            Ok(())
        }
    }
}

/// Escape a literal's lexical form for N-Triples / SPARQL output.
pub fn escape_literal(s: &str) -> Cow<'_, str> {
    if !s.contains(['"', '\\', '\n', '\r', '\t']) {
        return Cow::Borrowed(s);
    }
    let mut out = String::with_capacity(s.len() + 8);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            other => out.push(other),
        }
    }
    Cow::Owned(out)
}

/// An RDF term: the node/edge label type of a knowledge graph.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// An IRI (URI) reference.
    Iri(Arc<str>),
    /// A blank node with local label.
    Blank(Arc<str>),
    /// A literal value.
    Literal(Literal),
}

impl Term {
    /// IRI constructor.
    pub fn iri(s: impl Into<Arc<str>>) -> Self {
        Term::Iri(s.into())
    }

    /// Blank-node constructor.
    pub fn blank(s: impl Into<Arc<str>>) -> Self {
        Term::Blank(s.into())
    }

    /// Plain-string literal constructor.
    pub fn string(s: impl Into<Arc<str>>) -> Self {
        Term::Literal(Literal::string(s))
    }

    /// Integer literal constructor.
    pub fn integer(v: i64) -> Self {
        Term::Literal(Literal::integer(v))
    }

    /// True if the term is an IRI.
    pub fn is_iri(&self) -> bool {
        matches!(self, Term::Iri(_))
    }

    /// True if the term is a literal.
    pub fn is_literal(&self) -> bool {
        matches!(self, Term::Literal(_))
    }

    /// True if the term is a blank node.
    pub fn is_blank(&self) -> bool {
        matches!(self, Term::Blank(_))
    }

    /// The IRI string if the term is an IRI.
    pub fn as_iri(&self) -> Option<&str> {
        match self {
            Term::Iri(i) => Some(i),
            _ => None,
        }
    }

    /// The literal if the term is one.
    pub fn as_literal(&self) -> Option<&Literal> {
        match self {
            Term::Literal(l) => Some(l),
            _ => None,
        }
    }

    /// SPARQL `STR()`: the lexical form / IRI string.
    pub fn str_value(&self) -> &str {
        match self {
            Term::Iri(i) => i,
            Term::Blank(b) => b,
            Term::Literal(l) => &l.lexical,
        }
    }

    /// SPARQL value comparison (`<`, `>`, ...). `None` when the terms are not
    /// comparable (type error in SPARQL, row filtered out).
    pub fn value_cmp(&self, other: &Term) -> Option<Ordering> {
        match (self, other) {
            (Term::Literal(a), Term::Literal(b)) => match (a.parsed, b.parsed) {
                (TypedValue::Integer(x), TypedValue::Integer(y)) => Some(x.cmp(&y)),
                (TypedValue::DateTime(x), TypedValue::DateTime(y)) => Some(x.cmp(&y)),
                (TypedValue::Boolean(x), TypedValue::Boolean(y)) => Some(x.cmp(&y)),
                _ => {
                    if a.is_numeric() && b.is_numeric() {
                        a.as_f64()?.partial_cmp(&b.as_f64()?)
                    } else if matches!(a.parsed, TypedValue::String)
                        && matches!(b.parsed, TypedValue::String)
                    {
                        Some(a.lexical.as_ref().cmp(b.lexical.as_ref()))
                    } else {
                        None
                    }
                }
            },
            (Term::Iri(a), Term::Iri(b)) => Some(a.as_ref().cmp(b.as_ref())),
            _ => None,
        }
    }

    /// SPARQL `=` (value equality for literals, identity otherwise).
    pub fn value_eq(&self, other: &Term) -> Option<bool> {
        match (self, other) {
            (Term::Literal(_), Term::Literal(_)) => {
                if self == other {
                    return Some(true);
                }
                match self.value_cmp(other) {
                    Some(ord) => Some(ord == Ordering::Equal),
                    None => Some(false),
                }
            }
            _ => Some(self == other),
        }
    }

    /// Total ordering for ORDER BY: blanks < IRIs < literals, literals by
    /// value when comparable, otherwise lexically.
    pub fn order_cmp(&self, other: &Term) -> Ordering {
        fn rank(t: &Term) -> u8 {
            match t {
                Term::Blank(_) => 0,
                Term::Iri(_) => 1,
                Term::Literal(_) => 2,
            }
        }
        match rank(self).cmp(&rank(other)) {
            Ordering::Equal => self
                .value_cmp(other)
                .unwrap_or_else(|| self.str_value().cmp(other.str_value())),
            o => o,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(i) => write!(f, "<{i}>"),
            Term::Blank(b) => write!(f, "_:{b}"),
            Term::Literal(l) => write!(f, "{l}"),
        }
    }
}

/// An RDF triple of concrete terms.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Triple {
    /// Subject (IRI or blank node in valid RDF).
    pub subject: Term,
    /// Predicate (always an IRI in valid RDF).
    pub predicate: Term,
    /// Object (any term).
    pub object: Term,
}

impl Triple {
    /// Construct a triple.
    pub fn new(subject: Term, predicate: Term, object: Term) -> Self {
        Triple {
            subject,
            predicate,
            object,
        }
    }
}

impl fmt::Display for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {} .", self.subject, self.predicate, self.object)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_literal_parses() {
        let l = Literal::typed("42", xsd::INTEGER);
        assert_eq!(l.parsed, TypedValue::Integer(42));
        assert!(l.is_numeric());
        assert_eq!(l.as_f64(), Some(42.0));
    }

    #[test]
    fn malformed_integer_degrades_to_string() {
        let l = Literal::typed("forty-two", xsd::INTEGER);
        assert_eq!(l.parsed, TypedValue::String);
        assert!(!l.is_numeric());
    }

    #[test]
    fn datetime_roundtrip_year() {
        for (lex, want) in [
            ("2010-01-01T00:00:00", 2010),
            ("1999-12-31T23:59:59", 1999),
            ("2000-02-29T12:00:00", 2000),
            ("1970-01-01", 1970),
            ("1969-12-31", 1969),
            ("0001-01-01", 1),
        ] {
            let l = Literal::date_time(lex);
            match l.parsed {
                TypedValue::DateTime(secs) => assert_eq!(year_of_epoch(secs), want, "{lex}"),
                other => panic!("{lex} parsed as {other:?}"),
            }
        }
    }

    #[test]
    fn datetime_ordering() {
        let a = Literal::date_time("2005-06-01T00:00:00");
        let b = Literal::date_time("2010-06-01T00:00:00");
        let ta = Term::Literal(a);
        let tb = Term::Literal(b);
        assert_eq!(ta.value_cmp(&tb), Some(Ordering::Less));
    }

    #[test]
    fn cross_type_numeric_comparison() {
        let i = Term::Literal(Literal::integer(3));
        let d = Term::Literal(Literal::double(3.5));
        assert_eq!(i.value_cmp(&d), Some(Ordering::Less));
        assert_eq!(i.value_eq(&Term::Literal(Literal::double(3.0))), Some(true));
    }

    #[test]
    fn iri_literal_not_comparable() {
        let i = Term::iri("http://example.org/a");
        let l = Term::string("a");
        assert_eq!(i.value_cmp(&l), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Term::iri("http://x/a").to_string(), "<http://x/a>");
        assert_eq!(Term::blank("b0").to_string(), "_:b0");
        assert_eq!(Term::string("hi").to_string(), "\"hi\"");
        assert_eq!(
            Term::Literal(Literal::lang_string("hi", "en")).to_string(),
            "\"hi\"@en"
        );
        assert_eq!(
            Term::integer(7).to_string(),
            format!("\"7\"^^<{}>", xsd::INTEGER)
        );
    }

    #[test]
    fn escaping() {
        let l = Literal::string("a\"b\\c\nd");
        assert_eq!(l.to_string(), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn g_year_parses_to_datetime() {
        let l = Literal::typed("1995", xsd::G_YEAR);
        match l.parsed {
            TypedValue::DateTime(secs) => assert_eq!(year_of_epoch(secs), 1995),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn order_cmp_ranks_kinds() {
        let b = Term::blank("x");
        let i = Term::iri("http://x");
        let l = Term::string("x");
        assert_eq!(b.order_cmp(&i), Ordering::Less);
        assert_eq!(i.order_cmp(&l), Ordering::Less);
        assert_eq!(l.order_cmp(&l.clone()), Ordering::Equal);
    }
}
