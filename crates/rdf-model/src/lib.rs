//! RDF data model for the RDFFrames reproduction.
//!
//! Provides the substrate every other crate builds on:
//!
//! - [`term`]: RDF terms — IRIs, literals (with XSD value typing), blank nodes.
//! - [`interner`]: bidirectional term ↔ integer-id interning so the store and
//!   the SPARQL engine can work on `u32` ids in hot paths.
//! - [`graph`]: an indexed triple store with SPO/POS/OSP orderings supporting
//!   all eight triple-pattern access paths.
//! - [`dataset`]: named-graph container (the paper queries DBpedia, DBLP and
//!   YAGO graphs identified by graph URIs) maintaining a dataset-wide shared
//!   interner with per-graph local↔global id translation, so cross-graph
//!   query evaluation can join on integer ids.
//! - [`ntriples`]: N-Triples parser and serializer (stands in for rdflib in
//!   the "rdflib + pandas" baseline).
//! - [`persist`]: durable, crash-consistent dataset storage — checksummed
//!   snapshots plus a write-ahead log, recovered via [`Dataset::open`].
//! - [`hash`]: a fast non-cryptographic hasher for interner-style maps.
//! - [`prefix`]: prefix map / CURIE expansion used by the RDFFrames API.
//! - [`vocab`]: well-known vocabulary constants.

pub mod dataset;
pub mod error;
pub mod graph;
pub mod hash;
pub mod interner;
pub mod ntriples;
pub mod persist;
pub mod prefix;
pub mod term;
pub mod vocab;

pub use dataset::{Dataset, GraphIdMap, TermRanks};
pub use error::{ModelError, Result};
pub use graph::{Graph, GraphStats, ScanPos};
pub use interner::{Interner, TermId};
pub use persist::{RecoveryReport, StorageError, Store};
pub use prefix::PrefixMap;
pub use term::{Literal, Term, Triple};
