//! N-Triples parsing and serialization.
//!
//! This is the serialization-format substrate for the "rdflib + pandas"
//! baseline, which parses a dumped `.nt` file directly instead of querying
//! the engine. The parser is line-oriented per the N-Triples grammar and
//! handles IRIs, blank nodes, plain/lang-tagged/typed literals, and the
//! standard string escapes.

use std::fmt::Write as _;

use crate::error::{ModelError, Result};
use crate::graph::Graph;
use crate::term::{Literal, Term, Triple};

/// Parse a full N-Triples document into a list of triples.
pub fn parse_document(input: &str) -> Result<Vec<Triple>> {
    let mut triples = Vec::new();
    for (idx, line) in input.lines().enumerate() {
        let line_no = idx + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        triples.push(parse_line(line, line_no)?);
    }
    Ok(triples)
}

/// Parse a document straight into a [`Graph`].
pub fn parse_into_graph(input: &str) -> Result<Graph> {
    let mut g = Graph::new();
    for (idx, line) in input.lines().enumerate() {
        let line_no = idx + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let t = parse_line(line, line_no)?;
        g.insert(&t);
    }
    Ok(g)
}

/// Serialize triples to an N-Triples string.
pub fn write_document(triples: impl Iterator<Item = Triple>) -> String {
    let mut out = String::new();
    for t in triples {
        let _ = writeln!(out, "{t}");
    }
    out
}

fn syntax(line: usize, message: impl Into<String>) -> ModelError {
    ModelError::Syntax {
        line,
        message: message.into(),
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn new(s: &'a str, line: usize) -> Self {
        Cursor {
            bytes: s.as_bytes(),
            pos: 0,
            line,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ') | Some(b'\t')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        match self.bump() {
            Some(got) if got == b => Ok(()),
            got => Err(syntax(
                self.line,
                format!("expected '{}', got {:?}", b as char, got.map(|c| c as char)),
            )),
        }
    }

    fn str_from(&self, start: usize) -> &'a str {
        // Safety of from_utf8: we only slice at ASCII delimiter boundaries.
        std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("")
    }

    fn parse_iri(&mut self) -> Result<Term> {
        self.expect(b'<')?;
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b'>' {
                let iri = self.str_from(start).to_string();
                self.pos += 1;
                if iri.is_empty() {
                    return Err(syntax(self.line, "empty IRI"));
                }
                return Ok(Term::iri(iri));
            }
            self.pos += 1;
        }
        Err(syntax(self.line, "unterminated IRI"))
    }

    fn parse_blank(&mut self) -> Result<Term> {
        self.expect(b'_')?;
        self.expect(b':')?;
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b'.' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(syntax(self.line, "empty blank node label"));
        }
        Ok(Term::blank(self.str_from(start).to_string()))
    }

    fn parse_string_body(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(syntax(self.line, "unterminated string literal")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => out.push(self.parse_unicode_escape(4)?),
                    Some(b'U') => out.push(self.parse_unicode_escape(8)?),
                    other => {
                        return Err(syntax(
                            self.line,
                            format!("bad escape \\{:?}", other.map(|c| c as char)),
                        ))
                    }
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-assemble a UTF-8 multibyte sequence.
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let start = self.pos - 1;
                    for _ in 1..len {
                        self.bump();
                    }
                    match std::str::from_utf8(&self.bytes[start..self.pos]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return Err(syntax(self.line, "invalid UTF-8 in literal")),
                    }
                }
            }
        }
    }

    fn parse_unicode_escape(&mut self, digits: usize) -> Result<char> {
        let start = self.pos;
        for _ in 0..digits {
            self.bump()
                .ok_or_else(|| syntax(self.line, "truncated unicode escape"))?;
        }
        let hex = self.str_from(start);
        let code = u32::from_str_radix(hex, 16)
            .map_err(|_| syntax(self.line, format!("bad unicode escape {hex}")))?;
        char::from_u32(code).ok_or_else(|| syntax(self.line, format!("bad code point {code:x}")))
    }

    fn parse_literal(&mut self) -> Result<Term> {
        let body = self.parse_string_body()?;
        match self.peek() {
            Some(b'@') => {
                self.pos += 1;
                let start = self.pos;
                while let Some(b) = self.peek() {
                    if b.is_ascii_alphanumeric() || b == b'-' {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                if self.pos == start {
                    return Err(syntax(self.line, "empty language tag"));
                }
                let lang = self.str_from(start).to_string();
                Ok(Term::Literal(Literal::lang_string(body, lang)))
            }
            Some(b'^') => {
                self.expect(b'^')?;
                self.expect(b'^')?;
                match self.parse_iri()? {
                    Term::Iri(dt) => Ok(Term::Literal(Literal::typed(body, dt))),
                    _ => unreachable!("parse_iri returns Iri"),
                }
            }
            _ => Ok(Term::Literal(Literal::string(body))),
        }
    }

    fn parse_term(&mut self, allow_literal: bool) -> Result<Term> {
        self.skip_ws();
        match self.peek() {
            Some(b'<') => self.parse_iri(),
            Some(b'_') => self.parse_blank(),
            Some(b'"') if allow_literal => self.parse_literal(),
            other => Err(syntax(
                self.line,
                format!("unexpected character {:?}", other.map(|c| c as char)),
            )),
        }
    }
}

fn parse_line(line: &str, line_no: usize) -> Result<Triple> {
    let mut c = Cursor::new(line, line_no);
    let subject = c.parse_term(false)?;
    let predicate = c.parse_term(false)?;
    if !predicate.is_iri() {
        return Err(syntax(line_no, "predicate must be an IRI"));
    }
    let object = c.parse_term(true)?;
    c.skip_ws();
    c.expect(b'.')?;
    c.skip_ws();
    if c.peek().is_some() {
        return Err(syntax(line_no, "trailing content after '.'"));
    }
    Ok(Triple::new(subject, predicate, object))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::xsd;

    #[test]
    fn parse_basic_triple() {
        let doc = "<http://x/s> <http://x/p> <http://x/o> .\n";
        let ts = parse_document(doc).unwrap();
        assert_eq!(ts.len(), 1);
        assert_eq!(ts[0].subject, Term::iri("http://x/s"));
    }

    #[test]
    fn parse_literals() {
        let doc = concat!(
            "<http://x/s> <http://x/p> \"plain\" .\n",
            "<http://x/s> <http://x/p> \"hallo\"@de .\n",
            "<http://x/s> <http://x/p> \"5\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n",
        );
        let ts = parse_document(doc).unwrap();
        assert_eq!(ts.len(), 3);
        let lit = ts[2].object.as_literal().unwrap();
        assert_eq!(lit.datatype.as_deref(), Some(xsd::INTEGER));
        assert_eq!(lit.as_f64(), Some(5.0));
    }

    #[test]
    fn parse_escapes_and_unicode() {
        let doc = "<http://x/s> <http://x/p> \"a\\\"b\\nc\\u0041\" .\n";
        let ts = parse_document(doc).unwrap();
        assert_eq!(ts[0].object.str_value(), "a\"b\ncA");
    }

    #[test]
    fn parse_multibyte_utf8() {
        let doc = "<http://x/s> <http://x/p> \"héllo wörld ☃\" .\n";
        let ts = parse_document(doc).unwrap();
        assert_eq!(ts[0].object.str_value(), "héllo wörld ☃");
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let doc = "# header\n\n<http://x/s> <http://x/p> _:b1 .\n";
        let ts = parse_document(doc).unwrap();
        assert_eq!(ts.len(), 1);
        assert!(ts[0].object.is_blank());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let doc = "<http://x/s> <http://x/p> <http://x/o> .\ngarbage\n";
        match parse_document(doc) {
            Err(ModelError::Syntax { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected syntax error, got {other:?}"),
        }
    }

    #[test]
    fn literal_predicate_rejected() {
        let doc = "<http://x/s> \"p\" <http://x/o> .\n";
        assert!(parse_document(doc).is_err());
    }

    #[test]
    fn roundtrip() {
        let doc = concat!(
            "<http://x/s> <http://x/p> \"a\\\"b\" .\n",
            "<http://x/s> <http://x/p> \"x\"@en .\n",
            "<http://x/s> <http://x/q> \"7\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n",
        );
        let g = parse_into_graph(doc).unwrap();
        let out = write_document(g.iter_triples());
        let g2 = parse_into_graph(&out).unwrap();
        assert_eq!(g.len(), g2.len());
        let t1: Vec<_> = g.iter_triples().collect();
        let t2: Vec<_> = g2.iter_triples().collect();
        assert_eq!(t1, t2);
    }

    #[test]
    fn parse_into_graph_dedups() {
        let doc =
            "<http://x/s> <http://x/p> <http://x/o> .\n<http://x/s> <http://x/p> <http://x/o> .\n";
        let g = parse_into_graph(doc).unwrap();
        assert_eq!(g.len(), 1);
    }
}
