//! Well-known vocabulary IRIs (RDF, RDFS, XSD) plus the namespaces the paper's
//! workloads use (DBpedia, DBLP/SWRC, Dublin Core, YAGO).

/// `rdf:` namespace.
pub mod rdf {
    /// Namespace IRI.
    pub const NS: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#";
    /// `rdf:type`.
    pub const TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
}

/// `rdfs:` namespace.
pub mod rdfs {
    /// Namespace IRI.
    pub const NS: &str = "http://www.w3.org/2000/01/rdf-schema#";
    /// `rdfs:label`.
    pub const LABEL: &str = "http://www.w3.org/2000/01/rdf-schema#label";
}

/// `xsd:` datatypes.
pub mod xsd {
    /// Namespace IRI.
    pub const NS: &str = "http://www.w3.org/2001/XMLSchema#";
    /// `xsd:string`.
    pub const STRING: &str = "http://www.w3.org/2001/XMLSchema#string";
    /// `xsd:integer`.
    pub const INTEGER: &str = "http://www.w3.org/2001/XMLSchema#integer";
    /// `xsd:decimal`.
    pub const DECIMAL: &str = "http://www.w3.org/2001/XMLSchema#decimal";
    /// `xsd:double`.
    pub const DOUBLE: &str = "http://www.w3.org/2001/XMLSchema#double";
    /// `xsd:float`.
    pub const FLOAT: &str = "http://www.w3.org/2001/XMLSchema#float";
    /// `xsd:boolean`.
    pub const BOOLEAN: &str = "http://www.w3.org/2001/XMLSchema#boolean";
    /// `xsd:dateTime`.
    pub const DATE_TIME: &str = "http://www.w3.org/2001/XMLSchema#dateTime";
    /// `xsd:date`.
    pub const DATE: &str = "http://www.w3.org/2001/XMLSchema#date";
    /// `xsd:gYear`.
    pub const G_YEAR: &str = "http://www.w3.org/2001/XMLSchema#gYear";

    /// Integer-family datatype check (integer, int, long, short, byte and
    /// unsigned/negative variants).
    pub fn is_integer_type(dt: &str) -> bool {
        matches!(
            dt.strip_prefix(NS),
            Some(
                "integer"
                    | "int"
                    | "long"
                    | "short"
                    | "byte"
                    | "nonNegativeInteger"
                    | "nonPositiveInteger"
                    | "negativeInteger"
                    | "positiveInteger"
                    | "unsignedLong"
                    | "unsignedInt"
                    | "unsignedShort"
                    | "unsignedByte"
            )
        )
    }

    /// Floating/decimal-family datatype check.
    pub fn is_decimal_type(dt: &str) -> bool {
        matches!(dt.strip_prefix(NS), Some("decimal" | "double" | "float"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_family() {
        assert!(xsd::is_integer_type(xsd::INTEGER));
        assert!(xsd::is_integer_type(
            "http://www.w3.org/2001/XMLSchema#unsignedByte"
        ));
        assert!(!xsd::is_integer_type(xsd::DOUBLE));
        assert!(!xsd::is_integer_type("http://example.org/integer"));
    }

    #[test]
    fn decimal_family() {
        assert!(xsd::is_decimal_type(xsd::DECIMAL));
        assert!(xsd::is_decimal_type(xsd::FLOAT));
        assert!(!xsd::is_decimal_type(xsd::INTEGER));
    }
}
