//! Indexed triple store.
//!
//! Triples are interned and stored in three `BTreeSet` orderings (SPO, POS,
//! OSP) so that every triple-pattern shape has a contiguous range scan:
//!
//! | bound            | index | prefix        |
//! |------------------|-------|---------------|
//! | s, p, o          | SPO   | exact lookup  |
//! | s, p             | SPO   | (s, p, *)     |
//! | s                | SPO   | (s, *, *)     |
//! | p, o             | POS   | (p, o, *)     |
//! | p                | POS   | (p, *, *)     |
//! | o (and o, s)     | OSP   | (o, *, *)     |
//! | none             | SPO   | full scan     |
//!
//! The store also maintains per-predicate statistics used by the SPARQL
//! optimizer for join reordering.

use std::collections::{BTreeSet, HashMap};

use crate::interner::{Interner, TermId};
use crate::term::{Term, Triple};

const MIN: TermId = TermId(0);
const MAX: TermId = TermId(u32::MAX);

/// Per-predicate statistics for cardinality estimation.
#[derive(Debug, Clone, Default)]
pub struct PredicateStats {
    /// Total triples with this predicate.
    pub count: usize,
    /// Distinct subjects appearing with this predicate.
    pub distinct_subjects: usize,
    /// Distinct objects appearing with this predicate.
    pub distinct_objects: usize,
}

/// Snapshot of graph-level statistics (exposed to the query optimizer).
#[derive(Debug, Clone, Default)]
pub struct GraphStats {
    /// Total triple count.
    pub triples: usize,
    /// Per-predicate statistics.
    pub predicates: HashMap<TermId, PredicateStats>,
}

impl GraphStats {
    /// Estimated number of matches for a triple pattern where each position
    /// is either bound (`Some`) or a variable (`None`).
    ///
    /// Uses uniformity assumptions standard in RDF cost models: a bound
    /// subject with predicate `p` selects `count(p)/distinct_subjects(p)`
    /// triples, etc.
    pub fn estimate(
        &self,
        subject: Option<TermId>,
        predicate: Option<TermId>,
        object: Option<TermId>,
    ) -> f64 {
        match predicate {
            Some(p) => {
                let st = match self.predicates.get(&p) {
                    Some(st) => st,
                    None => return 0.0,
                };
                let base = st.count as f64;
                let s_sel = if subject.is_some() {
                    1.0 / st.distinct_subjects.max(1) as f64
                } else {
                    1.0
                };
                let o_sel = if object.is_some() {
                    1.0 / st.distinct_objects.max(1) as f64
                } else {
                    1.0
                };
                (base * s_sel * o_sel).max(if subject.is_some() || object.is_some() {
                    0.0
                } else {
                    base
                })
            }
            None => {
                let total = self.triples as f64;
                match (subject.is_some(), object.is_some()) {
                    (true, true) => total.sqrt().max(1.0),
                    (true, false) | (false, true) => (total / 100.0).max(1.0),
                    (false, false) => total,
                }
            }
        }
    }
}

/// An in-memory RDF graph with full triple-pattern access paths.
#[derive(Debug, Default, Clone)]
pub struct Graph {
    interner: Interner,
    spo: BTreeSet<(TermId, TermId, TermId)>,
    pos: BTreeSet<(TermId, TermId, TermId)>,
    osp: BTreeSet<(TermId, TermId, TermId)>,
    pred_subjects: HashMap<TermId, BTreeSet<TermId>>,
    pred_objects: HashMap<TermId, BTreeSet<TermId>>,
}

impl Graph {
    /// Empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.spo.len()
    }

    /// True when the graph holds no triples.
    pub fn is_empty(&self) -> bool {
        self.spo.is_empty()
    }

    /// Access the term interner (read-only).
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Intern a term (needed when constructing query constants).
    pub fn intern(&mut self, term: Term) -> TermId {
        self.interner.intern(term)
    }

    /// Look up a term's id without interning.
    pub fn term_id(&self, term: &Term) -> Option<TermId> {
        self.interner.get(term)
    }

    /// Resolve an id to its term.
    pub fn term(&self, id: TermId) -> &Term {
        self.interner.resolve(id)
    }

    /// Insert a triple of concrete terms. Returns `true` if newly inserted.
    pub fn insert(&mut self, triple: &Triple) -> bool {
        let s = self.interner.intern(triple.subject.clone());
        let p = self.interner.intern(triple.predicate.clone());
        let o = self.interner.intern(triple.object.clone());
        self.insert_ids(s, p, o)
    }

    /// Insert a triple of already-interned ids. Returns `true` if new.
    pub fn insert_ids(&mut self, s: TermId, p: TermId, o: TermId) -> bool {
        if !self.spo.insert((s, p, o)) {
            return false;
        }
        self.pos.insert((p, o, s));
        self.osp.insert((o, s, p));
        self.pred_subjects.entry(p).or_default().insert(s);
        self.pred_objects.entry(p).or_default().insert(o);
        true
    }

    /// Does the graph contain the exact triple?
    pub fn contains_ids(&self, s: TermId, p: TermId, o: TermId) -> bool {
        self.spo.contains(&(s, p, o))
    }

    /// Match a triple pattern; unbound positions are `None`. Yields matches
    /// as `(s, p, o)` id triples.
    pub fn match_pattern<'a>(
        &'a self,
        s: Option<TermId>,
        p: Option<TermId>,
        o: Option<TermId>,
    ) -> Box<dyn Iterator<Item = (TermId, TermId, TermId)> + 'a> {
        match (s, p, o) {
            (Some(s), Some(p), Some(o)) => {
                if self.spo.contains(&(s, p, o)) {
                    Box::new(std::iter::once((s, p, o)))
                } else {
                    Box::new(std::iter::empty())
                }
            }
            (Some(s), Some(p), None) => Box::new(
                self.spo
                    .range((s, p, MIN)..=(s, p, MAX))
                    .copied(),
            ),
            (Some(s), None, None) => Box::new(
                self.spo
                    .range((s, MIN, MIN)..=(s, MAX, MAX))
                    .copied(),
            ),
            (Some(s), None, Some(o)) => Box::new(
                self.osp
                    .range((o, s, MIN)..=(o, s, MAX))
                    .map(|&(o, s, p)| (s, p, o)),
            ),
            (None, Some(p), Some(o)) => Box::new(
                self.pos
                    .range((p, o, MIN)..=(p, o, MAX))
                    .map(|&(p, o, s)| (s, p, o)),
            ),
            (None, Some(p), None) => Box::new(
                self.pos
                    .range((p, MIN, MIN)..=(p, MAX, MAX))
                    .map(|&(p, o, s)| (s, p, o)),
            ),
            (None, None, Some(o)) => Box::new(
                self.osp
                    .range((o, MIN, MIN)..=(o, MAX, MAX))
                    .map(|&(o, s, p)| (s, p, o)),
            ),
            (None, None, None) => Box::new(self.spo.iter().copied()),
        }
    }

    /// Visit every match of a triple pattern without allocating an iterator
    /// (the boxed [`Graph::match_pattern`] costs one heap allocation per
    /// call, which adds up in index-nested-loop evaluation where a pattern
    /// is matched once per intermediate row). Returns the number of index
    /// entries visited.
    pub fn for_each_match<F: FnMut(TermId, TermId, TermId)>(
        &self,
        s: Option<TermId>,
        p: Option<TermId>,
        o: Option<TermId>,
        mut f: F,
    ) -> u64 {
        let mut n = 0;
        match (s, p, o) {
            (Some(s), Some(p), Some(o)) => {
                if self.spo.contains(&(s, p, o)) {
                    n += 1;
                    f(s, p, o);
                }
            }
            (Some(s), Some(p), None) => {
                for &(s, p, o) in self.spo.range((s, p, MIN)..=(s, p, MAX)) {
                    n += 1;
                    f(s, p, o);
                }
            }
            (Some(s), None, None) => {
                for &(s, p, o) in self.spo.range((s, MIN, MIN)..=(s, MAX, MAX)) {
                    n += 1;
                    f(s, p, o);
                }
            }
            (Some(s), None, Some(o)) => {
                for &(o, s, p) in self.osp.range((o, s, MIN)..=(o, s, MAX)) {
                    n += 1;
                    f(s, p, o);
                }
            }
            (None, Some(p), Some(o)) => {
                for &(p, o, s) in self.pos.range((p, o, MIN)..=(p, o, MAX)) {
                    n += 1;
                    f(s, p, o);
                }
            }
            (None, Some(p), None) => {
                for &(p, o, s) in self.pos.range((p, MIN, MIN)..=(p, MAX, MAX)) {
                    n += 1;
                    f(s, p, o);
                }
            }
            (None, None, Some(o)) => {
                for &(o, s, p) in self.osp.range((o, MIN, MIN)..=(o, MAX, MAX)) {
                    n += 1;
                    f(s, p, o);
                }
            }
            (None, None, None) => {
                for &(s, p, o) in self.spo.iter() {
                    n += 1;
                    f(s, p, o);
                }
            }
        }
        n
    }

    /// Exact (not estimated) number of matches for a pattern.
    pub fn count_pattern(
        &self,
        s: Option<TermId>,
        p: Option<TermId>,
        o: Option<TermId>,
    ) -> usize {
        self.match_pattern(s, p, o).count()
    }

    /// Iterate all triples as id tuples in SPO order.
    pub fn iter_ids(&self) -> impl Iterator<Item = (TermId, TermId, TermId)> + '_ {
        self.spo.iter().copied()
    }

    /// Iterate all triples as concrete [`Triple`]s (allocates per triple;
    /// intended for serialization, not evaluation).
    pub fn iter_triples(&self) -> impl Iterator<Item = Triple> + '_ {
        self.spo.iter().map(move |&(s, p, o)| {
            Triple::new(
                self.term(s).clone(),
                self.term(p).clone(),
                self.term(o).clone(),
            )
        })
    }

    /// Build a statistics snapshot for the optimizer.
    pub fn stats(&self) -> GraphStats {
        let mut predicates = HashMap::with_capacity(self.pred_subjects.len());
        for (&p, subjects) in &self.pred_subjects {
            let objects = &self.pred_objects[&p];
            let count = self
                .pos
                .range((p, MIN, MIN)..=(p, MAX, MAX))
                .count();
            predicates.insert(
                p,
                PredicateStats {
                    count,
                    distinct_subjects: subjects.len(),
                    distinct_objects: objects.len(),
                },
            );
        }
        GraphStats {
            triples: self.spo.len(),
            predicates,
        }
    }

    /// Distinct predicates in the graph.
    pub fn predicates(&self) -> impl Iterator<Item = TermId> + '_ {
        self.pred_subjects.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(Term::iri(s), Term::iri(p), Term::iri(o))
    }

    fn sample() -> Graph {
        let mut g = Graph::new();
        g.insert(&t("http://x/s1", "http://x/p1", "http://x/o1"));
        g.insert(&t("http://x/s1", "http://x/p1", "http://x/o2"));
        g.insert(&t("http://x/s2", "http://x/p1", "http://x/o1"));
        g.insert(&t("http://x/s2", "http://x/p2", "http://x/o3"));
        g
    }

    #[test]
    fn insert_deduplicates() {
        let mut g = Graph::new();
        assert!(g.insert(&t("http://x/a", "http://x/p", "http://x/b")));
        assert!(!g.insert(&t("http://x/a", "http://x/p", "http://x/b")));
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn all_eight_access_paths_agree() {
        let g = sample();
        let s1 = g.term_id(&Term::iri("http://x/s1")).unwrap();
        let p1 = g.term_id(&Term::iri("http://x/p1")).unwrap();
        let o1 = g.term_id(&Term::iri("http://x/o1")).unwrap();
        assert_eq!(g.count_pattern(Some(s1), Some(p1), Some(o1)), 1);
        assert_eq!(g.count_pattern(Some(s1), Some(p1), None), 2);
        assert_eq!(g.count_pattern(Some(s1), None, None), 2);
        assert_eq!(g.count_pattern(Some(s1), None, Some(o1)), 1);
        assert_eq!(g.count_pattern(None, Some(p1), Some(o1)), 2);
        assert_eq!(g.count_pattern(None, Some(p1), None), 3);
        assert_eq!(g.count_pattern(None, None, Some(o1)), 2);
        assert_eq!(g.count_pattern(None, None, None), 4);
    }

    #[test]
    fn for_each_match_agrees_with_match_pattern() {
        let g = sample();
        let s1 = g.term_id(&Term::iri("http://x/s1"));
        let p1 = g.term_id(&Term::iri("http://x/p1"));
        let o1 = g.term_id(&Term::iri("http://x/o1"));
        for s in [None, s1] {
            for p in [None, p1] {
                for o in [None, o1] {
                    let via_iter: Vec<_> = g.match_pattern(s, p, o).collect();
                    let mut via_visit = Vec::new();
                    let n = g.for_each_match(s, p, o, |ms, mp, mo| {
                        via_visit.push((ms, mp, mo));
                    });
                    assert_eq!(via_iter, via_visit);
                    assert_eq!(n as usize, via_visit.len());
                }
            }
        }
    }

    #[test]
    fn pattern_results_are_real_triples() {
        let g = sample();
        let p1 = g.term_id(&Term::iri("http://x/p1")).unwrap();
        for (s, p, o) in g.match_pattern(None, Some(p1), None) {
            assert_eq!(p, p1);
            assert!(g.contains_ids(s, p, o));
        }
    }

    #[test]
    fn stats_counts() {
        let g = sample();
        let stats = g.stats();
        assert_eq!(stats.triples, 4);
        let p1 = g.term_id(&Term::iri("http://x/p1")).unwrap();
        let st = &stats.predicates[&p1];
        assert_eq!(st.count, 3);
        assert_eq!(st.distinct_subjects, 2);
        assert_eq!(st.distinct_objects, 2);
    }

    #[test]
    fn estimate_orders_selectivity() {
        let g = sample();
        let stats = g.stats();
        let p1 = g.term_id(&Term::iri("http://x/p1")).unwrap();
        let s1 = g.term_id(&Term::iri("http://x/s1")).unwrap();
        let unbound = stats.estimate(None, Some(p1), None);
        let bound_s = stats.estimate(Some(s1), Some(p1), None);
        assert!(bound_s < unbound);
        assert_eq!(stats.estimate(None, None, None), 4.0);
    }

    #[test]
    fn missing_predicate_estimates_zero() {
        let g = sample();
        let stats = g.stats();
        assert_eq!(stats.estimate(None, Some(TermId(9999)), None), 0.0);
    }
}
