//! Indexed triple store: frozen sorted slabs + a small mutable delta.
//!
//! Triples are interned and stored in three orderings (SPO, POS, OSP) so
//! that every triple-pattern shape has a contiguous range scan:
//!
//! | bound            | index | prefix        |
//! |------------------|-------|---------------|
//! | s, p, o          | SPO   | exact lookup  |
//! | s, p             | SPO   | (s, p, *)     |
//! | s                | SPO   | (s, *, *)     |
//! | p, o             | POS   | (p, o, *)     |
//! | p                | POS   | (p, *, *)     |
//! | o (and o, s)     | OSP   | (o, *, *)     |
//! | none             | SPO   | full scan     |
//!
//! # Slab + delta layout
//!
//! Each ordering is split into two parts:
//!
//! - a **frozen slab**: a sorted `Vec<(TermId, TermId, TermId)>`. Range
//!   lookups are two `partition_point` binary searches followed by a linear
//!   walk over contiguous memory — no pointer chasing, no tree nodes, and
//!   the prefetcher sees a plain array.
//! - a **delta buffer**: a `BTreeSet` in the same ordering holding triples
//!   inserted since the last compaction. Scans merge the slab slice with the
//!   delta range on the fly (both are sorted, so the merge is linear and
//!   preserves global index order).
//!
//! # Compaction contract
//!
//! [`Graph::compact`] drains the delta into the slabs (an `O(n)` two-way
//! merge per ordering). Inserts trigger it automatically once the delta
//! reaches [`Graph::DEFAULT_DELTA_THRESHOLD`] entries, so bulk loads stay
//! `O(n · n/threshold)` instead of `O(n²)`; [`rdf_model::Dataset`] compacts
//! every graph it takes ownership of at insert time, so query-time scans on
//! dataset graphs normally see an empty delta and degenerate to pure slab
//! slices. Compaction never changes observable contents or scan order —
//! `match_pattern`, `for_each_match`, `iter_ids`, `len`, and `stats` return
//! identical results before and after (property-tested in
//! `tests/proptest_model.rs`).
//!
//! The store also derives per-predicate statistics used by the SPARQL
//! optimizer for join reordering.

use std::collections::{BTreeSet, HashMap, HashSet};

use crate::interner::{Interner, TermId};
use crate::term::{Term, Triple};

const MIN: TermId = TermId(0);
const MAX: TermId = TermId(u32::MAX);

/// A triple of interned ids, in whatever ordering its index uses.
type Key = (TermId, TermId, TermId);

/// Opaque suspension point of a [`Graph::for_each_match_from`] scan: the raw
/// index key (in the chosen index's own ordering, *not* (s, p, o)) the scan
/// stopped at. Only meaningful when passed back to the same graph with the
/// same pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanPos(Key);

/// Strict successor of a key in lexicographic order (`None` past the end).
#[inline]
fn key_successor((a, b, c): Key) -> Option<Key> {
    if c < MAX {
        Some((a, b, TermId(c.0 + 1)))
    } else if b < MAX {
        Some((a, TermId(b.0 + 1), MIN))
    } else if a < MAX {
        Some((TermId(a.0 + 1), MIN, MIN))
    } else {
        None
    }
}

/// Per-predicate statistics for cardinality estimation.
#[derive(Debug, Clone, Default)]
pub struct PredicateStats {
    /// Total triples with this predicate.
    pub count: usize,
    /// Distinct subjects appearing with this predicate.
    pub distinct_subjects: usize,
    /// Distinct objects appearing with this predicate.
    pub distinct_objects: usize,
}

/// Snapshot of graph-level statistics (exposed to the query optimizer).
#[derive(Debug, Clone, Default)]
pub struct GraphStats {
    /// Total triple count.
    pub triples: usize,
    /// Per-predicate statistics.
    pub predicates: HashMap<TermId, PredicateStats>,
}

impl GraphStats {
    /// Estimated number of matches for a triple pattern where each position
    /// is either bound (`Some`) or a variable (`None`).
    ///
    /// Uses uniformity assumptions standard in RDF cost models: a bound
    /// subject with predicate `p` selects `count(p)/distinct_subjects(p)`
    /// triples, etc.
    pub fn estimate(
        &self,
        subject: Option<TermId>,
        predicate: Option<TermId>,
        object: Option<TermId>,
    ) -> f64 {
        match predicate {
            Some(p) => {
                let st = match self.predicates.get(&p) {
                    Some(st) => st,
                    None => return 0.0,
                };
                let base = st.count as f64;
                let s_sel = if subject.is_some() {
                    1.0 / st.distinct_subjects.max(1) as f64
                } else {
                    1.0
                };
                let o_sel = if object.is_some() {
                    1.0 / st.distinct_objects.max(1) as f64
                } else {
                    1.0
                };
                (base * s_sel * o_sel).max(if subject.is_some() || object.is_some() {
                    0.0
                } else {
                    base
                })
            }
            None => {
                let total = self.triples as f64;
                match (subject.is_some(), object.is_some()) {
                    (true, true) => total.sqrt().max(1.0),
                    (true, false) | (false, true) => (total / 100.0).max(1.0),
                    (false, false) => total,
                }
            }
        }
    }
}

/// One index ordering: frozen sorted slab + sorted delta overlay.
#[derive(Debug, Default, Clone)]
struct Index {
    slab: Vec<Key>,
    delta: BTreeSet<Key>,
}

impl Index {
    /// The contiguous slab range whose entries fall in `[lo, hi]`.
    #[inline]
    fn slab_range(&self, lo: Key, hi: Key) -> &[Key] {
        let start = self.slab.partition_point(|&t| t < lo);
        let end = start + self.slab[start..].partition_point(|&t| t <= hi);
        &self.slab[start..end]
    }

    fn contains(&self, key: Key) -> bool {
        self.slab.binary_search(&key).is_ok() || self.delta.contains(&key)
    }

    /// Visit every entry in `[lo, hi]` in index order, merging the slab
    /// slice with the delta range (both sorted; entries are disjoint).
    fn for_each_in<F: FnMut(Key)>(&self, lo: Key, hi: Key, mut f: F) -> u64 {
        let slab = self.slab_range(lo, hi);
        if self.delta.is_empty() {
            // Fast path: pure contiguous scan.
            for &k in slab {
                f(k);
            }
            return slab.len() as u64;
        }
        // One canonical merge: the visitor path drives the same iterator
        // `match_pattern` exposes, so the tie-break can never diverge.
        let mut n = 0;
        for k in self.range_iter(lo, hi) {
            n += 1;
            f(k);
        }
        n
    }

    /// Like [`Index::for_each_in`], but the visitor can stop the scan early
    /// by returning `false`. Returns the number of entries visited (the
    /// stopping entry counts — it was handed to `f`) plus the key the scan
    /// stopped *at*, or `None` when the range was exhausted. Resuming from
    /// the successor of the returned key visits every remaining entry
    /// exactly once, so the total visited across suspensions equals one
    /// uninterrupted [`Index::for_each_in`] pass.
    fn for_each_in_until<F: FnMut(Key) -> bool>(
        &self,
        lo: Key,
        hi: Key,
        mut f: F,
    ) -> (u64, Option<Key>) {
        if self.delta.is_empty() {
            // Fast path: pure contiguous scan.
            let slab = self.slab_range(lo, hi);
            for (i, &k) in slab.iter().enumerate() {
                if !f(k) {
                    return (i as u64 + 1, Some(k));
                }
            }
            return (slab.len() as u64, None);
        }
        let mut n = 0;
        for k in self.range_iter(lo, hi) {
            n += 1;
            if !f(k) {
                return (n, Some(k));
            }
        }
        (n, None)
    }

    /// Iterator form of [`Index::for_each_in`] (allocation is confined to
    /// the boxed iterator the caller already pays for).
    fn range_iter(&self, lo: Key, hi: Key) -> MergeIter<'_> {
        MergeIter {
            slab: self.slab_range(lo, hi).iter(),
            slab_peek: None,
            delta: self.delta.range(lo..=hi),
            delta_peek: None,
        }
    }

    /// Merge the delta into the slab (two-way merge from the back, in
    /// place). Afterwards the delta is empty.
    fn compact(&mut self) {
        if self.delta.is_empty() {
            return;
        }
        let add: Vec<Key> = std::mem::take(&mut self.delta).into_iter().collect();
        if self.slab.last().is_none_or(|&last| last < add[0]) {
            // Append-only pattern (monotone ids during bulk load).
            self.slab.extend(add);
            return;
        }
        let old_len = self.slab.len();
        self.slab.resize(old_len + add.len(), (MIN, MIN, MIN));
        let mut write = self.slab.len();
        let mut read = old_len;
        let mut extra = add.len();
        // Entries are disjoint (inserts check contains first), so a strict
        // comparison is enough.
        while extra > 0 {
            write -= 1;
            if read > 0 && self.slab[read - 1] > add[extra - 1] {
                read -= 1;
                self.slab[write] = self.slab[read];
            } else {
                extra -= 1;
                self.slab[write] = add[extra];
            }
        }
    }

    fn len(&self) -> usize {
        self.slab.len() + self.delta.len()
    }
}

/// Sorted two-way merge over a slab slice and a delta range.
struct MergeIter<'a> {
    slab: std::slice::Iter<'a, Key>,
    slab_peek: Option<Key>,
    delta: std::collections::btree_set::Range<'a, Key>,
    delta_peek: Option<Key>,
}

impl Iterator for MergeIter<'_> {
    type Item = Key;

    fn next(&mut self) -> Option<Key> {
        if self.slab_peek.is_none() {
            self.slab_peek = self.slab.next().copied();
        }
        if self.delta_peek.is_none() {
            self.delta_peek = self.delta.next().copied();
        }
        match (self.slab_peek, self.delta_peek) {
            (Some(a), Some(b)) => {
                if a <= b {
                    self.slab_peek = None;
                    Some(a)
                } else {
                    self.delta_peek = None;
                    Some(b)
                }
            }
            (Some(a), None) => {
                self.slab_peek = None;
                Some(a)
            }
            (None, Some(b)) => {
                self.delta_peek = None;
                Some(b)
            }
            (None, None) => None,
        }
    }
}

/// An in-memory RDF graph with full triple-pattern access paths.
///
/// See the module docs for the slab + delta storage design and the
/// compaction contract.
#[derive(Debug, Clone)]
pub struct Graph {
    interner: Interner,
    spo: Index,
    pos: Index,
    osp: Index,
    delta_threshold: usize,
    /// Times a non-empty delta has merged into the slabs. Consumers caching
    /// derived data (e.g. [`crate::Dataset`]'s optimizer statistics) compare
    /// generations to decide when a refresh is due — the delta stays small
    /// by construction, so "stale until the next merge" bounds the error.
    compactions: u64,
}

impl Default for Graph {
    fn default() -> Self {
        Graph {
            interner: Interner::new(),
            spo: Index::default(),
            pos: Index::default(),
            osp: Index::default(),
            delta_threshold: Self::DEFAULT_DELTA_THRESHOLD,
            compactions: 0,
        }
    }
}

impl Graph {
    /// Delta size at which an insert triggers automatic compaction.
    pub const DEFAULT_DELTA_THRESHOLD: usize = 8192;

    /// Empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty graph with a custom auto-compaction threshold (tests use small
    /// thresholds to exercise slab/delta interleavings; `usize::MAX`
    /// disables auto-compaction entirely).
    pub fn with_delta_threshold(threshold: usize) -> Self {
        Graph {
            delta_threshold: threshold.max(1),
            ..Self::default()
        }
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.spo.len()
    }

    /// True when the graph holds no triples.
    pub fn is_empty(&self) -> bool {
        self.spo.len() == 0
    }

    /// Number of triples currently in the mutable delta (0 right after
    /// [`Graph::compact`]).
    pub fn delta_len(&self) -> usize {
        self.spo.delta.len()
    }

    /// The configured auto-compaction threshold ([`usize::MAX`] when
    /// auto-compaction is disabled).
    pub fn delta_threshold(&self) -> usize {
        self.delta_threshold
    }

    /// Read-only view of the frozen SPO slab — the exact sorted array the
    /// persistence layer serializes block-by-block (and a future pager maps).
    pub fn spo_slab(&self) -> &[(TermId, TermId, TermId)] {
        &self.spo.slab
    }

    /// Iterate the delta-resident triples in SPO order (disjoint from
    /// [`Graph::spo_slab`]; slab ∪ delta is the full graph).
    pub fn delta_ids(&self) -> impl Iterator<Item = (TermId, TermId, TermId)> + '_ {
        self.spo.delta.iter().copied()
    }

    /// The frozen POS slab (persistence internals).
    pub(crate) fn pos_slab(&self) -> &[Key] {
        &self.pos.slab
    }

    /// The frozen OSP slab (persistence internals).
    pub(crate) fn osp_slab(&self) -> &[Key] {
        &self.osp.slab
    }

    /// Reassemble a graph from persisted parts without triggering any
    /// compaction: the three slabs are installed as-is, the SPO-order delta
    /// is replicated into POS/OSP order by permutation, and the compaction
    /// generation is restored verbatim. The caller (the snapshot decoder)
    /// is responsible for slab sortedness and slab/delta disjointness —
    /// both are verified during decode before this runs.
    pub(crate) fn from_parts(
        interner: Interner,
        spo_slab: Vec<Key>,
        pos_slab: Vec<Key>,
        osp_slab: Vec<Key>,
        spo_delta: Vec<Key>,
        delta_threshold: usize,
        compactions: u64,
    ) -> Graph {
        let pos_delta: BTreeSet<Key> = spo_delta.iter().map(|&(s, p, o)| (p, o, s)).collect();
        let osp_delta: BTreeSet<Key> = spo_delta.iter().map(|&(s, p, o)| (o, s, p)).collect();
        Graph {
            interner,
            spo: Index {
                slab: spo_slab,
                delta: spo_delta.into_iter().collect(),
            },
            pos: Index {
                slab: pos_slab,
                delta: pos_delta,
            },
            osp: Index {
                slab: osp_slab,
                delta: osp_delta,
            },
            delta_threshold: delta_threshold.max(1),
            compactions,
        }
    }

    /// Access the term interner (read-only).
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Intern a term (needed when constructing query constants).
    pub fn intern(&mut self, term: Term) -> TermId {
        self.interner.intern(term)
    }

    /// Look up a term's id without interning.
    pub fn term_id(&self, term: &Term) -> Option<TermId> {
        self.interner.get(term)
    }

    /// Resolve an id to its term.
    pub fn term(&self, id: TermId) -> &Term {
        self.interner.resolve(id)
    }

    /// Insert a triple of concrete terms. Returns `true` if newly inserted.
    pub fn insert(&mut self, triple: &Triple) -> bool {
        let s = self.interner.intern(triple.subject.clone());
        let p = self.interner.intern(triple.predicate.clone());
        let o = self.interner.intern(triple.object.clone());
        self.insert_ids(s, p, o)
    }

    /// Insert a triple of already-interned ids. Returns `true` if new.
    pub fn insert_ids(&mut self, s: TermId, p: TermId, o: TermId) -> bool {
        if self.spo.contains((s, p, o)) {
            return false;
        }
        self.spo.delta.insert((s, p, o));
        self.pos.delta.insert((p, o, s));
        self.osp.delta.insert((o, s, p));
        if self.spo.delta.len() >= self.delta_threshold {
            self.compact();
        }
        true
    }

    /// Merge the delta buffers into the frozen slabs. Idempotent; see the
    /// module docs for the full contract.
    pub fn compact(&mut self) {
        if self.spo.delta.is_empty() {
            // The three deltas mirror each other; nothing to merge.
            return;
        }
        self.compactions += 1;
        self.spo.compact();
        self.pos.compact();
        self.osp.compact();
    }

    /// How many times a non-empty delta has merged into the slabs (both
    /// explicit [`Graph::compact`] calls and threshold-triggered automatic
    /// merges). Monotone; equal generations mean the slab contents are
    /// unchanged since the generation was observed.
    pub fn compaction_generation(&self) -> u64 {
        self.compactions
    }

    /// Does the graph contain the exact triple?
    pub fn contains_ids(&self, s: TermId, p: TermId, o: TermId) -> bool {
        self.spo.contains((s, p, o))
    }

    /// Index, bounds, and match→(s,p,o) projection for a pattern shape.
    #[inline]
    fn access_path(
        &self,
        s: Option<TermId>,
        p: Option<TermId>,
        o: Option<TermId>,
    ) -> (&Index, Key, Key, fn(Key) -> Key) {
        fn id_spo(k: Key) -> Key {
            k
        }
        fn from_pos((p, o, s): Key) -> Key {
            (s, p, o)
        }
        fn from_osp((o, s, p): Key) -> Key {
            (s, p, o)
        }
        match (s, p, o) {
            (Some(s), Some(p), Some(o)) => (&self.spo, (s, p, o), (s, p, o), id_spo),
            (Some(s), Some(p), None) => (&self.spo, (s, p, MIN), (s, p, MAX), id_spo),
            (Some(s), None, None) => (&self.spo, (s, MIN, MIN), (s, MAX, MAX), id_spo),
            (Some(s), None, Some(o)) => (&self.osp, (o, s, MIN), (o, s, MAX), from_osp),
            (None, Some(p), Some(o)) => (&self.pos, (p, o, MIN), (p, o, MAX), from_pos),
            (None, Some(p), None) => (&self.pos, (p, MIN, MIN), (p, MAX, MAX), from_pos),
            (None, None, Some(o)) => (&self.osp, (o, MIN, MIN), (o, MAX, MAX), from_osp),
            (None, None, None) => (&self.spo, (MIN, MIN, MIN), (MAX, MAX, MAX), id_spo),
        }
    }

    /// The order in which a scan emits its *free* positions (0 = subject,
    /// 1 = predicate, 2 = object) for a given bound-ness shape — the suffix
    /// of the chosen index's ordering after the bound prefix. Kept adjacent
    /// to [`Graph::access_path`] (one row per arm, property-tested in this
    /// module) so the two tables cannot drift: the query optimizer's
    /// interesting-order tracking uses this to know which variable sequence
    /// a slab scan yields sorted.
    pub fn scan_free_order(s_bound: bool, p_bound: bool, o_bound: bool) -> &'static [usize] {
        match (s_bound, p_bound, o_bound) {
            (true, true, true) => &[],
            (true, true, false) => &[2],         // SPO, (s, p) fixed → o
            (true, false, false) => &[1, 2],     // SPO, s fixed → (p, o)
            (true, false, true) => &[1],         // OSP, (o, s) fixed → p
            (false, true, true) => &[0],         // POS, (p, o) fixed → s
            (false, true, false) => &[2, 0],     // POS, p fixed → (o, s)
            (false, false, true) => &[0, 1],     // OSP, o fixed → (s, p)
            (false, false, false) => &[0, 1, 2], // SPO full scan
        }
    }

    /// Match a triple pattern; unbound positions are `None`. Yields matches
    /// as `(s, p, o)` id triples in index order.
    pub fn match_pattern<'a>(
        &'a self,
        s: Option<TermId>,
        p: Option<TermId>,
        o: Option<TermId>,
    ) -> Box<dyn Iterator<Item = (TermId, TermId, TermId)> + 'a> {
        let (index, lo, hi, project) = self.access_path(s, p, o);
        Box::new(index.range_iter(lo, hi).map(project))
    }

    /// Visit every match of a triple pattern without allocating an iterator
    /// (the boxed [`Graph::match_pattern`] costs one heap allocation per
    /// call, which adds up in index-nested-loop evaluation where a pattern
    /// is matched once per intermediate row). Returns the number of index
    /// entries visited.
    pub fn for_each_match<F: FnMut(TermId, TermId, TermId)>(
        &self,
        s: Option<TermId>,
        p: Option<TermId>,
        o: Option<TermId>,
        mut f: F,
    ) -> u64 {
        let (index, lo, hi, project) = self.access_path(s, p, o);
        index.for_each_in(lo, hi, |k| {
            let (s, p, o) = project(k);
            f(s, p, o);
        })
    }

    /// Resumable form of [`Graph::for_each_match`]: visit matches in index
    /// order starting *after* `resume` (a [`ScanPos`] returned by a previous
    /// suspension; `None` starts from the beginning), stopping early when
    /// the visitor returns `false`.
    ///
    /// Returns `(visited, pos)`: `visited` counts index entries handed to
    /// the visitor in this call, and `pos` is `Some` when the visitor
    /// stopped the scan (pass it back to continue) or `None` when the
    /// pattern's range is exhausted. The sum of `visited` across a chain of
    /// suspended calls equals the count one uninterrupted
    /// [`Graph::for_each_match`] reports — streaming executors rely on this
    /// for scan-work parity with materializing ones.
    pub fn for_each_match_from<F: FnMut(TermId, TermId, TermId) -> bool>(
        &self,
        s: Option<TermId>,
        p: Option<TermId>,
        o: Option<TermId>,
        resume: Option<ScanPos>,
        mut f: F,
    ) -> (u64, Option<ScanPos>) {
        let (index, lo, hi, project) = self.access_path(s, p, o);
        let lo = match resume {
            // Ranges are inclusive, so resuming means the strict successor
            // of the suspension key; `None` when that overflows past the
            // whole key space (the previous visit was (MAX, MAX, MAX)).
            Some(ScanPos(k)) => match key_successor(k) {
                Some(next) if next <= hi => next,
                _ => return (0, None),
            },
            None => lo,
        };
        let (visited, stopped) = index.for_each_in_until(lo, hi, |k| {
            let (s, p, o) = project(k);
            f(s, p, o)
        });
        (visited, stopped.map(ScanPos))
    }

    /// Exact (not estimated) number of matches for a pattern.
    pub fn count_pattern(&self, s: Option<TermId>, p: Option<TermId>, o: Option<TermId>) -> usize {
        let (index, lo, hi, _) = self.access_path(s, p, o);
        if index.delta.is_empty() {
            index.slab_range(lo, hi).len()
        } else {
            index.slab_range(lo, hi).len() + index.delta.range(lo..=hi).count()
        }
    }

    /// Iterate all triples as id tuples in SPO order.
    pub fn iter_ids(&self) -> impl Iterator<Item = (TermId, TermId, TermId)> + '_ {
        self.spo.range_iter((MIN, MIN, MIN), (MAX, MAX, MAX))
    }

    /// Iterate all triples as concrete [`Triple`]s (allocates per triple;
    /// intended for serialization, not evaluation).
    pub fn iter_triples(&self) -> impl Iterator<Item = Triple> + '_ {
        self.iter_ids().map(move |(s, p, o)| {
            Triple::new(
                self.term(s).clone(),
                self.term(p).clone(),
                self.term(o).clone(),
            )
        })
    }

    /// Build a statistics snapshot for the optimizer in one POS-order pass.
    pub fn stats(&self) -> GraphStats {
        let mut predicates: HashMap<TermId, PredicateStats> = HashMap::new();
        let mut subjects: HashMap<TermId, HashSet<TermId>> = HashMap::new();
        let mut current: Option<(TermId, TermId)> = None;
        self.pos
            .for_each_in((MIN, MIN, MIN), (MAX, MAX, MAX), |(p, o, s)| {
                let st = predicates.entry(p).or_default();
                st.count += 1;
                // POS order: distinct (p, o) prefixes arrive consecutively.
                if current != Some((p, o)) {
                    current = Some((p, o));
                    st.distinct_objects += 1;
                }
                subjects.entry(p).or_default().insert(s);
            });
        for (p, subs) in subjects {
            predicates
                .get_mut(&p)
                .expect("predicate seen in scan")
                .distinct_subjects = subs.len();
        }
        GraphStats {
            triples: self.len(),
            predicates,
        }
    }

    /// Distinct predicates in the graph, ascending.
    pub fn predicates(&self) -> impl Iterator<Item = TermId> + '_ {
        let mut last: Option<TermId> = None;
        self.pos
            .range_iter((MIN, MIN, MIN), (MAX, MAX, MAX))
            .filter_map(move |(p, _, _)| {
                if last == Some(p) {
                    None
                } else {
                    last = Some(p);
                    Some(p)
                }
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(Term::iri(s), Term::iri(p), Term::iri(o))
    }

    fn sample() -> Graph {
        let mut g = Graph::new();
        g.insert(&t("http://x/s1", "http://x/p1", "http://x/o1"));
        g.insert(&t("http://x/s1", "http://x/p1", "http://x/o2"));
        g.insert(&t("http://x/s2", "http://x/p1", "http://x/o1"));
        g.insert(&t("http://x/s2", "http://x/p2", "http://x/o3"));
        g
    }

    /// Same contents as [`sample`] but compacted midway, so half the
    /// triples live in the slab and half in the delta (scans must merge).
    fn sample_half_compacted() -> Graph {
        let mut g = Graph::new();
        g.insert(&t("http://x/s1", "http://x/p1", "http://x/o1"));
        g.insert(&t("http://x/s2", "http://x/p1", "http://x/o1"));
        g.compact();
        g.insert(&t("http://x/s1", "http://x/p1", "http://x/o2"));
        g.insert(&t("http://x/s2", "http://x/p2", "http://x/o3"));
        assert_eq!(g.delta_len(), 2);
        g
    }

    /// Same contents as [`sample`] but fully compacted (pure slab scans).
    fn sample_compacted() -> Graph {
        let mut g = sample();
        g.compact();
        g
    }

    #[test]
    fn resumable_scan_matches_uninterrupted_scan() {
        // Every boundness shape × every storage layout × several suspension
        // strides: chaining suspended scans must visit the same triples in
        // the same order, with the same total visited count, as one
        // uninterrupted `for_each_match` pass.
        for g in [sample(), sample_compacted(), sample_half_compacted()] {
            let s1 = g.term_id(&Term::iri("http://x/s1"));
            let p1 = g.term_id(&Term::iri("http://x/p1"));
            let o1 = g.term_id(&Term::iri("http://x/o1"));
            for s in [None, s1] {
                for p in [None, p1] {
                    for o in [None, o1] {
                        let mut full = Vec::new();
                        let full_n = g.for_each_match(s, p, o, |ms, mp, mo| {
                            full.push((ms, mp, mo));
                        });
                        for stride in [1usize, 2, 3, 100] {
                            let mut seen = Vec::new();
                            let mut total = 0u64;
                            let mut pos = None;
                            loop {
                                let mut left = stride;
                                let (n, next) = g.for_each_match_from(s, p, o, pos, |a, b, c| {
                                    seen.push((a, b, c));
                                    left -= 1;
                                    left > 0
                                });
                                total += n;
                                match next {
                                    Some(_) => pos = next,
                                    None => break,
                                }
                            }
                            assert_eq!(seen, full, "stride {stride} changed the visit order");
                            assert_eq!(total, full_n, "stride {stride} changed the work count");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn insert_deduplicates() {
        let mut g = Graph::new();
        assert!(g.insert(&t("http://x/a", "http://x/p", "http://x/b")));
        assert!(!g.insert(&t("http://x/a", "http://x/p", "http://x/b")));
        assert_eq!(g.len(), 1);
        g.compact();
        assert!(!g.insert(&t("http://x/a", "http://x/p", "http://x/b")));
        assert_eq!(g.len(), 1);
        assert_eq!(g.delta_len(), 0);
    }

    #[test]
    fn all_eight_access_paths_agree() {
        for g in [sample(), sample_compacted(), sample_half_compacted()] {
            let s1 = g.term_id(&Term::iri("http://x/s1")).unwrap();
            let p1 = g.term_id(&Term::iri("http://x/p1")).unwrap();
            let o1 = g.term_id(&Term::iri("http://x/o1")).unwrap();
            assert_eq!(g.count_pattern(Some(s1), Some(p1), Some(o1)), 1);
            assert_eq!(g.count_pattern(Some(s1), Some(p1), None), 2);
            assert_eq!(g.count_pattern(Some(s1), None, None), 2);
            assert_eq!(g.count_pattern(Some(s1), None, Some(o1)), 1);
            assert_eq!(g.count_pattern(None, Some(p1), Some(o1)), 2);
            assert_eq!(g.count_pattern(None, Some(p1), None), 3);
            assert_eq!(g.count_pattern(None, None, Some(o1)), 2);
            assert_eq!(g.count_pattern(None, None, None), 4);
        }
    }

    #[test]
    fn for_each_match_agrees_with_match_pattern() {
        for g in [sample(), sample_compacted(), sample_half_compacted()] {
            let s1 = g.term_id(&Term::iri("http://x/s1"));
            let p1 = g.term_id(&Term::iri("http://x/p1"));
            let o1 = g.term_id(&Term::iri("http://x/o1"));
            for s in [None, s1] {
                for p in [None, p1] {
                    for o in [None, o1] {
                        let via_iter: Vec<_> = g.match_pattern(s, p, o).collect();
                        let mut via_visit = Vec::new();
                        let n = g.for_each_match(s, p, o, |ms, mp, mo| {
                            via_visit.push((ms, mp, mo));
                        });
                        assert_eq!(via_iter, via_visit);
                        assert_eq!(n as usize, via_visit.len());
                        assert_eq!(g.count_pattern(s, p, o), via_visit.len());
                    }
                }
            }
        }
    }

    #[test]
    fn half_compacted_scans_merge_in_order() {
        let mut g = Graph::new();
        g.insert(&t("http://x/s1", "http://x/p1", "http://x/o1"));
        g.insert(&t("http://x/s2", "http://x/p1", "http://x/o1"));
        g.compact();
        // Interleaves before, between, and after the slab entries.
        g.insert(&t("http://x/s1", "http://x/p1", "http://x/o0"));
        g.insert(&t("http://x/s1", "http://x/p2", "http://x/o9"));
        g.insert(&t("http://x/s3", "http://x/p1", "http://x/o1"));
        assert_eq!(g.delta_len(), 3);
        let all: Vec<_> = g.iter_ids().collect();
        assert_eq!(all.len(), 5);
        let mut sorted = all.clone();
        sorted.sort();
        assert_eq!(all, sorted, "merged scan must be in SPO order");
        let mut compacted = g.clone();
        compacted.compact();
        assert_eq!(compacted.delta_len(), 0);
        let after: Vec<_> = compacted.iter_ids().collect();
        assert_eq!(all, after, "compaction must not change contents");
    }

    #[test]
    fn auto_compaction_at_threshold() {
        let mut g = Graph::with_delta_threshold(4);
        for i in 0..10 {
            g.insert(&t(&format!("http://x/s{i}"), "http://x/p", "http://x/o"));
        }
        assert_eq!(g.len(), 10);
        assert!(g.delta_len() < 4, "delta must stay below the threshold");
        assert_eq!(g.count_pattern(None, None, None), 10);
    }

    #[test]
    fn scan_free_order_matches_actual_scan_order() {
        // For every bound-ness shape, the matches projected onto the
        // claimed free-position sequence must come out lexicographically
        // non-decreasing — pinning `scan_free_order` to `access_path`.
        for g in [sample(), sample_compacted(), sample_half_compacted()] {
            let s1 = g.term_id(&Term::iri("http://x/s1"));
            let p1 = g.term_id(&Term::iri("http://x/p1"));
            let o1 = g.term_id(&Term::iri("http://x/o1"));
            for s in [None, s1] {
                for p in [None, p1] {
                    for o in [None, o1] {
                        let order = Graph::scan_free_order(s.is_some(), p.is_some(), o.is_some());
                        let keys: Vec<Vec<TermId>> = g
                            .match_pattern(s, p, o)
                            .map(|(ms, mp, mo)| {
                                let m = [ms, mp, mo];
                                order.iter().map(|&pos| m[pos]).collect()
                            })
                            .collect();
                        assert!(
                            keys.windows(2).all(|w| w[0] <= w[1]),
                            "scan order claim broken for shape ({}, {}, {})",
                            s.is_some(),
                            p.is_some(),
                            o.is_some()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn pattern_results_are_real_triples() {
        for g in [sample(), sample_compacted(), sample_half_compacted()] {
            let p1 = g.term_id(&Term::iri("http://x/p1")).unwrap();
            for (s, p, o) in g.match_pattern(None, Some(p1), None) {
                assert_eq!(p, p1);
                assert!(g.contains_ids(s, p, o));
            }
        }
    }

    #[test]
    fn stats_counts() {
        for g in [sample(), sample_compacted(), sample_half_compacted()] {
            let stats = g.stats();
            assert_eq!(stats.triples, 4);
            let p1 = g.term_id(&Term::iri("http://x/p1")).unwrap();
            let st = &stats.predicates[&p1];
            assert_eq!(st.count, 3);
            assert_eq!(st.distinct_subjects, 2);
            assert_eq!(st.distinct_objects, 2);
        }
    }

    #[test]
    fn estimate_orders_selectivity() {
        let g = sample();
        let stats = g.stats();
        let p1 = g.term_id(&Term::iri("http://x/p1")).unwrap();
        let s1 = g.term_id(&Term::iri("http://x/s1")).unwrap();
        let unbound = stats.estimate(None, Some(p1), None);
        let bound_s = stats.estimate(Some(s1), Some(p1), None);
        assert!(bound_s < unbound);
        assert_eq!(stats.estimate(None, None, None), 4.0);
    }

    #[test]
    fn missing_predicate_estimates_zero() {
        let g = sample();
        let stats = g.stats();
        assert_eq!(stats.estimate(None, Some(TermId(9999)), None), 0.0);
    }

    #[test]
    fn predicates_are_distinct_and_sorted() {
        for g in [sample(), sample_compacted(), sample_half_compacted()] {
            let preds: Vec<_> = g.predicates().collect();
            assert_eq!(preds.len(), 2);
            let mut sorted = preds.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(preds, sorted);
        }
    }
}
