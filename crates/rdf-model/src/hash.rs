//! A fast, non-cryptographic hasher for the store's internal maps.
//!
//! The interner hashes every term string on every load and ingest path;
//! the standard `SipHash` default is DoS-resistant but several times
//! slower than needed for maps that are never keyed by attacker-supplied
//! data shapes we must defend against (a snapshot is checksummed before
//! any of its terms reach a map). This is the well-known `FxHash`
//! multiply-rotate scheme: wordwise, allocation-free, and deterministic
//! within a process — but *not* stable across runs or platforms, so it
//! must never leak into on-disk formats.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the FxHash scheme (a randomish odd 64-bit constant).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Wordwise multiply-rotate hasher. Not cryptographic; in-memory use only.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while let Some((chunk, rest)) = bytes.split_first_chunk::<8>() {
            self.add(u64::from_le_bytes(*chunk));
            bytes = rest;
        }
        if let Some((chunk, rest)) = bytes.split_first_chunk::<4>() {
            self.add(u32::from_le_bytes(*chunk) as u64);
            bytes = rest;
        }
        for &b in bytes {
            self.add(b as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`] maps.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` with the fast hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_of(bytes: &[u8]) -> u64 {
        let mut h = FxHasher::default();
        h.write(bytes);
        h.finish()
    }

    #[test]
    fn equal_inputs_hash_equal_and_unequal_differ() {
        assert_eq!(hash_of(b"http://x/a"), hash_of(b"http://x/a"));
        assert_ne!(hash_of(b"http://x/a"), hash_of(b"http://x/b"));
        // A prefix must not collide trivially with its extension.
        assert_ne!(hash_of(b"abc"), hash_of(b"abcd"));
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<String, usize> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(format!("http://x/term{i}"), i);
        }
        for i in 0..1000 {
            assert_eq!(m.get(&format!("http://x/term{i}")), Some(&i));
        }
    }
}
