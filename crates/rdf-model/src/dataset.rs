//! Named-graph dataset.
//!
//! The paper's queries address graphs by URI (`FROM <http://dbpedia.org>`,
//! cross-graph joins between DBpedia and YAGO). A [`Dataset`] maps graph URIs
//! to independent [`Graph`] stores.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::graph::Graph;

/// A collection of named graphs.
#[derive(Debug, Default, Clone)]
pub struct Dataset {
    graphs: BTreeMap<String, Arc<Graph>>,
}

impl Dataset {
    /// Empty dataset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert (or replace) a named graph.
    pub fn insert_graph(&mut self, uri: impl Into<String>, graph: Graph) {
        self.graphs.insert(uri.into(), Arc::new(graph));
    }

    /// Insert a pre-shared graph handle.
    pub fn insert_shared(&mut self, uri: impl Into<String>, graph: Arc<Graph>) {
        self.graphs.insert(uri.into(), graph);
    }

    /// Fetch a graph by URI.
    pub fn graph(&self, uri: &str) -> Option<&Arc<Graph>> {
        self.graphs.get(uri)
    }

    /// All graph URIs, sorted.
    pub fn graph_uris(&self) -> impl Iterator<Item = &str> {
        self.graphs.keys().map(String::as_str)
    }

    /// Number of named graphs.
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// True when the dataset has no graphs.
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }

    /// Total triples across all graphs.
    pub fn total_triples(&self) -> usize {
        self.graphs.values().map(|g| g.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{Term, Triple};

    #[test]
    fn graphs_are_independent() {
        let mut a = Graph::new();
        a.insert(&Triple::new(
            Term::iri("http://x/s"),
            Term::iri("http://x/p"),
            Term::iri("http://x/o"),
        ));
        let b = Graph::new();
        let mut ds = Dataset::new();
        ds.insert_graph("http://dbpedia.org", a);
        ds.insert_graph("http://yago-knowledge.org", b);
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.graph("http://dbpedia.org").unwrap().len(), 1);
        assert_eq!(ds.graph("http://yago-knowledge.org").unwrap().len(), 0);
        assert!(ds.graph("http://missing").is_none());
        assert_eq!(ds.total_triples(), 1);
    }

    #[test]
    fn uris_sorted() {
        let mut ds = Dataset::new();
        ds.insert_graph("http://b", Graph::new());
        ds.insert_graph("http://a", Graph::new());
        let uris: Vec<_> = ds.graph_uris().collect();
        assert_eq!(uris, vec!["http://a", "http://b"]);
    }
}
