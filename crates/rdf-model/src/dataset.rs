//! Named-graph dataset with a dataset-wide term id space.
//!
//! The paper's queries address graphs by URI (`FROM <http://dbpedia.org>`,
//! cross-graph joins between DBpedia and YAGO). A [`Dataset`] maps graph URIs
//! to independent [`Graph`] stores.
//!
//! Each [`Graph`] interns terms into its own dense local id space. So that a
//! query evaluator can keep *every* intermediate binding as a `u32` — even
//! across graphs — the dataset additionally maintains a **shared interner**:
//! when a graph is inserted, all of its terms are interned into the dataset
//! interner and a bidirectional local↔global id translation ([`GraphIdMap`])
//! is recorded. Global ids are therefore canonical across the whole dataset:
//! two ids are equal iff the terms are equal, no matter which graphs they
//! were scanned from, which lets joins, DISTINCT, and GROUP BY hash plain
//! integers instead of strings.

use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};

use crate::graph::{Graph, GraphStats};
use crate::hash::FxHashMap;
use crate::interner::{Interner, TermId};
use crate::term::{Term, Triple};

/// Bidirectional translation between one graph's local [`TermId`]s and the
/// dataset-wide global id space.
#[derive(Debug, Default, Clone)]
pub struct GraphIdMap {
    /// `to_global[local.index()]` is the global id of the local term.
    to_global: Vec<TermId>,
    /// Global id → local id, for binding query constants / bound variables
    /// back into a graph's index space.
    from_global: FxHashMap<TermId, TermId>,
    /// Set once some local→global translation broke strict ascent (a term
    /// of this graph was already interned globally by an earlier graph).
    /// While unset, local id order and global id order coincide, so index
    /// scans — which emit triples in local id order — produce columns
    /// sorted by *global* id, the property the query optimizer's
    /// interesting-order tracking (and thus merge joins) relies on.
    non_monotone: bool,
}

impl GraphIdMap {
    fn build(graph: &Graph, interner: &mut Interner) -> Self {
        let mut map = GraphIdMap::default();
        map.extend_from(graph, interner);
        map
    }

    /// Intern any graph-local terms past the end of this map into the
    /// dataset interner and record their translations. Local ids are dense
    /// and append-only, so this is an incremental suffix walk — the
    /// mutation path ([`Dataset::append_triples`]) calls it instead of
    /// rebuilding the whole map.
    ///
    /// Monotonicity bookkeeping: comparing each new global against
    /// `to_global.last()` is a *complete* check, not a sample — while the
    /// map is monotone the last entry is its maximum, so `global <= last`
    /// holds iff the extension breaks strict ascent (and once broken the
    /// flag latches). Property-tested against ground truth under arbitrary
    /// append interleavings in `tests/proptest_model.rs`
    /// (`order_preservation_flag_is_truthful_under_appends`).
    fn extend_from(&mut self, graph: &Graph, interner: &mut Interner) {
        let graph_interner = graph.interner();
        let known = self.to_global.len();
        if known == graph_interner.len() {
            return;
        }
        self.to_global.reserve(graph_interner.len() - known);
        for (local, term) in graph_interner.iter().skip(known) {
            let global = interner.intern(term.clone());
            debug_assert_eq!(self.to_global.len(), local.index());
            if self.to_global.last().is_some_and(|&prev| global <= prev) {
                self.non_monotone = true;
            }
            self.to_global.push(global);
            self.from_global.insert(global, local);
        }
    }

    /// True while the local→global translation is strictly increasing, i.e.
    /// scans in local id order yield globally-sorted ids. Holds for the
    /// first graph inserted into a fresh dataset (the common single-graph
    /// workload) and breaks as soon as a later graph shares terms with an
    /// earlier one.
    #[inline]
    pub fn order_preserving(&self) -> bool {
        !self.non_monotone
    }

    /// Translate a local id to its global id.
    ///
    /// # Panics
    /// Panics if `local` did not come from the mapped graph.
    #[inline]
    pub fn to_global(&self, local: TermId) -> TermId {
        self.to_global[local.index()]
    }

    /// Translate a global id to this graph's local id, `None` when the term
    /// does not occur in the graph.
    #[inline]
    pub fn to_local(&self, global: TermId) -> Option<TermId> {
        self.from_global.get(&global).copied()
    }
}

/// A cached statistics snapshot plus the graph compaction generation it was
/// taken at. The generation is the staleness witness: whenever the graph's
/// delta merges into the slabs (any path — explicit [`Graph::compact`] or
/// the threshold-triggered auto-merge inside [`Graph::insert`]), the
/// generation bumps and the next [`Dataset::graph_stats`] read rebuilds the
/// snapshot. Between merges stats lag by at most the live delta size.
#[derive(Debug, Clone)]
struct StatsEntry {
    generation: u64,
    stats: Arc<GraphStats>,
}

/// Dictionary-rank permutation over a dataset interner snapshot: maps each
/// global [`TermId`] to its rank in SPARQL `ORDER BY` term order
/// ([`Term::order_cmp`]). Terms that compare equal under `order_cmp` (e.g.
/// numerically-equal literals with different lexical forms) share a rank, so
/// comparing two ranks gives *exactly* the ordering `order_cmp` would —
/// `ORDER BY ?var` on plain variables can sort raw `u32` ranks without
/// materializing a single sort-key term.
#[derive(Debug)]
pub struct TermRanks {
    ranks: Vec<u32>,
}

impl TermRanks {
    /// Number of ids covered (the interner length at snapshot time). Ids at
    /// or past this index (e.g. query-local overflow terms) have no rank.
    pub fn len(&self) -> usize {
        self.ranks.len()
    }

    /// True when the snapshot covers no terms.
    pub fn is_empty(&self) -> bool {
        self.ranks.is_empty()
    }

    /// Rank of a global id, `None` when the id is outside the snapshot.
    #[inline]
    pub fn rank(&self, id: TermId) -> Option<u32> {
        self.ranks.get(id.index()).copied()
    }
}

/// A collection of named graphs sharing one global term id space.
#[derive(Debug, Default)]
pub struct Dataset {
    graphs: BTreeMap<String, Arc<Graph>>,
    interner: Interner,
    id_maps: BTreeMap<String, Arc<GraphIdMap>>,
    /// Optimizer statistics, snapshotted at graph insert. Reads go through
    /// [`Dataset::graph_stats`], which compares the cached compaction
    /// generation against the graph's and lazily rebuilds after any
    /// delta→slab merge — including threshold-triggered auto-merges that
    /// happen deep inside [`Graph::insert`], which no caller observes.
    stats: RwLock<BTreeMap<String, StatsEntry>>,
    /// Lazily built dictionary-rank permutation over the shared interner
    /// (see [`Dataset::term_ranks`]); invalidated by interner growth.
    ranks: RwLock<Option<Arc<TermRanks>>>,
    /// Count of graph mutations (inserts, replacements, append batches) —
    /// the staleness witness behind [`Dataset::stats_generation`].
    mutations: u64,
}

impl Clone for Dataset {
    fn clone(&self) -> Self {
        Dataset {
            graphs: self.graphs.clone(),
            interner: self.interner.clone(),
            id_maps: self.id_maps.clone(),
            stats: RwLock::new(self.stats.read().expect("stats lock").clone()),
            ranks: RwLock::new(self.ranks.read().expect("ranks lock").clone()),
            mutations: self.mutations,
        }
    }
}

impl Dataset {
    /// Empty dataset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Open (or create) a durable dataset rooted at `dir`: the persistent
    /// counterpart of [`Dataset::new`]. An absent or empty directory yields
    /// a fresh, fully usable store; an existing one is recovered from its
    /// snapshot and write-ahead log (see [`crate::persist`] for the on-disk
    /// contract). Mutations go through the returned
    /// [`Store`](crate::persist::Store) so they are logged durably.
    pub fn open(
        dir: impl AsRef<std::path::Path>,
    ) -> std::result::Result<crate::persist::Store, crate::persist::StorageError> {
        crate::persist::Store::open_path(dir)
    }

    /// Install a restored interner (snapshot recovery only). The dataset
    /// must still be empty: graphs inserted afterwards re-intern their terms
    /// against this table and hit the persisted ids exactly, which is what
    /// keeps recovered id maps identical to the originals.
    pub(crate) fn restore_interner(&mut self, interner: Interner) {
        debug_assert!(
            self.graphs.is_empty() && self.interner.is_empty(),
            "restore_interner requires an empty dataset"
        );
        self.interner = interner;
    }

    /// Overwrite the mutation counter (snapshot/WAL recovery only): a
    /// restored dataset must report the same [`Dataset::stats_generation`]
    /// the persisted one did, or plan caches stamped before a restart would
    /// wrongly validate (or wrongly discard) their entries after it.
    pub(crate) fn set_stats_generation(&mut self, generation: u64) {
        self.mutations = generation;
    }

    /// Insert (or replace) a named graph.
    ///
    /// The graph is [compacted](Graph::compact) first: datasets freeze their
    /// graphs behind `Arc`s, so query-time scans should run on pure slab
    /// ranges with an empty delta.
    pub fn insert_graph(&mut self, uri: impl Into<String>, mut graph: Graph) {
        graph.compact();
        self.insert_shared(uri, Arc::new(graph));
    }

    /// Insert a pre-shared graph handle (as-is: a shared graph cannot be
    /// compacted here, so its delta — if any — stays live and scans merge
    /// it on the fly).
    pub fn insert_shared(&mut self, uri: impl Into<String>, graph: Arc<Graph>) {
        let uri = uri.into();
        self.mutations += 1;
        let map = GraphIdMap::build(&graph, &mut self.interner);
        self.id_maps.insert(uri.clone(), Arc::new(map));
        self.stats.get_mut().expect("stats lock").insert(
            uri.clone(),
            StatsEntry {
                generation: graph.compaction_generation(),
                stats: Arc::new(graph.stats()),
            },
        );
        self.graphs.insert(uri, graph);
    }

    /// Append triples to a graph already in the dataset, keeping the whole
    /// derived state consistent: newly seen terms are interned and added to
    /// the graph's local↔global id translation incrementally. Statistics
    /// are *not* recomputed eagerly here — [`Dataset::graph_stats`] detects
    /// any delta→slab merge the burst triggered (via the graph's compaction
    /// generation) and rebuilds lazily on the next optimizer read, so a
    /// bulk-load of many batches pays for at most one stats pass per
    /// query-after-merge instead of one per batch. Between merges the stats
    /// lag by at most the live delta size, which the threshold bounds.
    ///
    /// Copy-on-write: if the graph `Arc` is shared outside the dataset, the
    /// dataset's copy is cloned first and external handles stop observing
    /// the appends.
    ///
    /// Returns the number of *new* triples, or `None` for an unknown graph.
    pub fn append_triples<I>(&mut self, uri: &str, triples: I) -> Option<usize>
    where
        I: IntoIterator<Item = Triple>,
    {
        let graph_arc = self.graphs.get_mut(uri)?;
        self.mutations += 1;
        let graph = Arc::make_mut(graph_arc);
        let mut added = 0usize;
        for t in triples {
            if graph.insert(&t) {
                added += 1;
            }
        }
        let map = Arc::make_mut(self.id_maps.get_mut(uri).expect("id map tracks graph"));
        map.extend_from(graph, &mut self.interner);
        Some(added)
    }

    /// Force a statistics refresh for one graph regardless of compaction
    /// generation — picks up rows still sitting in the live delta, which
    /// the generation-keyed lazy refresh deliberately ignores. Returns
    /// `false` for an unknown graph.
    pub fn refresh_stats(&mut self, uri: &str) -> bool {
        let Some(graph) = self.graphs.get(uri) else {
            return false;
        };
        let entry = StatsEntry {
            generation: graph.compaction_generation(),
            stats: Arc::new(graph.stats()),
        };
        self.stats
            .get_mut()
            .expect("stats lock")
            .insert(uri.to_string(), entry);
        true
    }

    /// Fetch a graph by URI.
    pub fn graph(&self, uri: &str) -> Option<&Arc<Graph>> {
        self.graphs.get(uri)
    }

    /// The local↔global id translation for a graph.
    pub fn id_map(&self, uri: &str) -> Option<&Arc<GraphIdMap>> {
        self.id_maps.get(uri)
    }

    /// Cached optimizer statistics for a graph. Self-healing: the cached
    /// snapshot carries the compaction generation it was taken at, and a
    /// read that observes a newer generation — i.e. the graph's delta has
    /// merged into the slabs since, whether through an explicit
    /// [`Graph::compact`] or the threshold auto-merge inside
    /// [`Graph::insert`] — rebuilds the snapshot before returning. Callers
    /// therefore never see stats staler than the live (threshold-bounded)
    /// delta, without having to track generations themselves.
    pub fn graph_stats(&self, uri: &str) -> Option<Arc<GraphStats>> {
        let graph = self.graphs.get(uri)?;
        let generation = graph.compaction_generation();
        {
            let stats = self.stats.read().expect("stats lock");
            if let Some(entry) = stats.get(uri) {
                if entry.generation == generation {
                    return Some(Arc::clone(&entry.stats));
                }
            }
        }
        // Stale (or missing) snapshot: rebuild outside the read lock. A
        // racing reader may rebuild too; the write is idempotent.
        let entry = StatsEntry {
            generation,
            stats: Arc::new(graph.stats()),
        };
        let stats = Arc::clone(&entry.stats);
        self.stats
            .write()
            .expect("stats lock")
            .insert(uri.to_string(), entry);
        Some(stats)
    }

    /// Monotonic witness of every dataset state a statistics-driven query
    /// plan depends on: bumped by each [`Dataset::insert_graph`] /
    /// [`Dataset::insert_shared`] (including replacements) and each
    /// [`Dataset::append_triples`] batch — the only paths that can mutate
    /// a dataset's graphs, since graph handles are frozen behind `Arc`s.
    /// Two equal generations therefore guarantee the optimizer would
    /// produce the same plan; plan caches stamp their entries with this
    /// and re-optimize on mismatch. A bump whose appends still sit in an
    /// un-merged delta (stats intentionally lag it) costs one harmless
    /// few-microsecond re-prepare, never a wrong plan.
    pub fn stats_generation(&self) -> u64 {
        self.mutations
    }

    /// The cached dictionary-rank permutation, only if it is already built
    /// and still fresh (interner unchanged). Lets callers use a warm cache
    /// without committing to the full rebuild [`Dataset::term_ranks`]
    /// performs — e.g. a 10-row `ORDER BY` is cheaper to sort on terms than
    /// to amortize a million-term rank build against.
    pub fn cached_term_ranks(&self) -> Option<Arc<TermRanks>> {
        let cached = self.ranks.read().expect("ranks lock");
        cached
            .as_ref()
            .filter(|r| r.len() == self.interner.len())
            .map(Arc::clone)
    }

    /// The dictionary-rank permutation over the shared interner, built
    /// lazily on first use and cached until the interner grows (the
    /// interner is append-only, so a length comparison is a complete
    /// staleness check). One `O(n log n)` sort buys every subsequent
    /// `ORDER BY ?var` an id-native `u32` comparison per row.
    pub fn term_ranks(&self) -> Arc<TermRanks> {
        let len = self.interner.len();
        {
            let cached = self.ranks.read().expect("ranks lock");
            if let Some(r) = cached.as_ref() {
                if r.len() == len {
                    return Arc::clone(r);
                }
            }
        }
        let mut ids: Vec<TermId> = (0..len as u32).map(TermId).collect();
        ids.sort_unstable_by(|a, b| {
            self.interner
                .resolve(*a)
                .order_cmp(self.interner.resolve(*b))
        });
        let mut ranks = vec![0u32; len];
        let mut rank = 0u32;
        for (i, id) in ids.iter().enumerate() {
            // Terms comparing equal share the rank of their group head, so
            // rank comparison reproduces order_cmp ties exactly.
            if i > 0
                && self
                    .interner
                    .resolve(ids[i - 1])
                    .order_cmp(self.interner.resolve(*id))
                    != std::cmp::Ordering::Equal
            {
                rank = i as u32;
            }
            ranks[id.index()] = rank;
        }
        let built = Arc::new(TermRanks { ranks });
        *self.ranks.write().expect("ranks lock") = Some(Arc::clone(&built));
        built
    }

    /// The dataset-wide interner (global id space).
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Resolve a global id to its term.
    ///
    /// # Panics
    /// Panics if the id is not a global id of this dataset.
    #[inline]
    pub fn resolve(&self, id: TermId) -> &Term {
        self.interner.resolve(id)
    }

    /// Look up a term's global id without interning.
    pub fn lookup(&self, term: &Term) -> Option<TermId> {
        self.interner.get(term)
    }

    /// All graph URIs, sorted.
    pub fn graph_uris(&self) -> impl Iterator<Item = &str> {
        self.graphs.keys().map(String::as_str)
    }

    /// Number of named graphs.
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// True when the dataset has no graphs.
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }

    /// Total triples across all graphs.
    pub fn total_triples(&self) -> usize {
        self.graphs.values().map(|g| g.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{Term, Triple};

    #[test]
    fn graphs_are_independent() {
        let mut a = Graph::new();
        a.insert(&Triple::new(
            Term::iri("http://x/s"),
            Term::iri("http://x/p"),
            Term::iri("http://x/o"),
        ));
        let b = Graph::new();
        let mut ds = Dataset::new();
        ds.insert_graph("http://dbpedia.org", a);
        ds.insert_graph("http://yago-knowledge.org", b);
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.graph("http://dbpedia.org").unwrap().len(), 1);
        assert_eq!(ds.graph("http://yago-knowledge.org").unwrap().len(), 0);
        assert!(ds.graph("http://missing").is_none());
        assert_eq!(ds.total_triples(), 1);
    }

    #[test]
    fn uris_sorted() {
        let mut ds = Dataset::new();
        ds.insert_graph("http://b", Graph::new());
        ds.insert_graph("http://a", Graph::new());
        let uris: Vec<_> = ds.graph_uris().collect();
        assert_eq!(uris, vec!["http://a", "http://b"]);
    }

    #[test]
    fn shared_interner_unifies_ids_across_graphs() {
        let shared = Term::iri("http://x/both");
        let only_a = Term::iri("http://x/a");
        let only_b = Term::iri("http://x/b");
        let p = Term::iri("http://x/p");

        let mut a = Graph::new();
        a.insert(&Triple::new(only_a.clone(), p.clone(), shared.clone()));
        let mut b = Graph::new();
        b.insert(&Triple::new(shared.clone(), p.clone(), only_b.clone()));

        let mut ds = Dataset::new();
        ds.insert_graph("http://ga", a);
        ds.insert_graph("http://gb", b);

        // The shared term has one global id reachable from both graphs.
        let global = ds.lookup(&shared).expect("shared term interned");
        let map_a = ds.id_map("http://ga").unwrap();
        let map_b = ds.id_map("http://gb").unwrap();
        let local_a = ds.graph("http://ga").unwrap().term_id(&shared).unwrap();
        let local_b = ds.graph("http://gb").unwrap().term_id(&shared).unwrap();
        assert_eq!(map_a.to_global(local_a), global);
        assert_eq!(map_b.to_global(local_b), global);
        assert_eq!(map_a.to_local(global), Some(local_a));
        assert_eq!(map_b.to_local(global), Some(local_b));

        // Terms absent from a graph translate to None.
        let only_b_global = ds.lookup(&only_b).unwrap();
        assert_eq!(map_a.to_local(only_b_global), None);
        assert_eq!(ds.resolve(only_b_global), &only_b);
    }

    fn t(s: &str, o: &str) -> Triple {
        Triple::new(Term::iri(s), Term::iri("http://x/p"), Term::iri(o))
    }

    #[test]
    fn append_triples_extends_id_map_incrementally() {
        let mut g = Graph::new();
        g.insert(&t("http://x/s0", "http://x/o0"));
        let mut ds = Dataset::new();
        ds.insert_graph("http://g", g);

        let added = ds
            .append_triples(
                "http://g",
                vec![
                    t("http://x/s1", "http://x/o1"),
                    t("http://x/s0", "http://x/o0"), // duplicate
                ],
            )
            .unwrap();
        assert_eq!(added, 1);
        assert_eq!(ds.graph("http://g").unwrap().len(), 2);

        // The new term has a global id and a working round trip.
        let global = ds.lookup(&Term::iri("http://x/s1")).expect("interned");
        let map = ds.id_map("http://g").unwrap();
        let local = ds
            .graph("http://g")
            .unwrap()
            .term_id(&Term::iri("http://x/s1"))
            .unwrap();
        assert_eq!(map.to_global(local), global);
        assert_eq!(map.to_local(global), Some(local));
        assert!(ds.append_triples("http://missing", vec![]).is_none());
    }

    #[test]
    fn stats_refresh_when_delta_merges() {
        // Threshold 4 → the graph keeps a live delta inside the dataset
        // (insert_shared does not compact).
        let mut g = Graph::with_delta_threshold(4);
        g.insert(&t("http://x/s0", "http://x/o0"));
        let mut ds = Dataset::new();
        ds.insert_shared("http://g", Arc::new(g));
        assert_eq!(ds.graph_stats("http://g").unwrap().triples, 1);

        // Two appends: delta at 3, no merge yet → snapshot stays stale.
        ds.append_triples(
            "http://g",
            vec![
                t("http://x/s1", "http://x/o1"),
                t("http://x/s2", "http://x/o2"),
            ],
        )
        .unwrap();
        assert_eq!(ds.graph("http://g").unwrap().len(), 3);
        assert_eq!(
            ds.graph_stats("http://g").unwrap().triples,
            1,
            "stats lag while the delta is live"
        );

        // One more append reaches the threshold: delta merges, stats refresh.
        ds.append_triples("http://g", vec![t("http://x/s3", "http://x/o3")])
            .unwrap();
        assert_eq!(ds.graph("http://g").unwrap().delta_len(), 0);
        let stats = ds.graph_stats("http://g").unwrap();
        assert_eq!(stats.triples, 4);
        let p = ds.lookup(&Term::iri("http://x/p")).unwrap();
        let local_p = ds.id_map("http://g").unwrap().to_local(p).unwrap();
        assert_eq!(stats.predicates[&local_p].count, 4);

        // Explicit refresh picks up un-merged rows on demand.
        ds.append_triples("http://g", vec![t("http://x/s4", "http://x/o4")])
            .unwrap();
        assert_eq!(ds.graph_stats("http://g").unwrap().triples, 4);
        assert!(ds.refresh_stats("http://g"));
        assert_eq!(ds.graph_stats("http://g").unwrap().triples, 5);
        assert!(!ds.refresh_stats("http://missing"));
    }

    #[test]
    fn stats_self_heal_after_threshold_triggered_merge() {
        // Regression: a threshold-triggered auto-merge happens *inside*
        // `Graph::insert`, where no caller can observe it. `graph_stats`
        // must detect the generation bump on its own and rebuild — without
        // `refresh_stats` or any caller-side generation bookkeeping.
        let mut g = Graph::with_delta_threshold(4);
        g.insert(&t("http://x/s0", "http://x/o0"));
        let mut ds = Dataset::new();
        ds.insert_shared("http://g", Arc::new(g));
        assert_eq!(ds.graph_stats("http://g").unwrap().triples, 1);

        // Below the threshold: no merge, snapshot intentionally lags.
        ds.append_triples("http://g", vec![t("http://x/s1", "http://x/o1")])
            .unwrap();
        assert_eq!(ds.graph_stats("http://g").unwrap().triples, 1);

        // Crossing the threshold merges the delta mid-append; the very next
        // read must see the merged state.
        ds.append_triples(
            "http://g",
            vec![
                t("http://x/s2", "http://x/o2"),
                t("http://x/s3", "http://x/o3"),
            ],
        )
        .unwrap();
        assert_eq!(ds.graph("http://g").unwrap().delta_len(), 0);
        let stats = ds.graph_stats("http://g").unwrap();
        assert_eq!(stats.triples, 4, "read-time refresh must self-heal");
        let p = ds.lookup(&Term::iri("http://x/p")).unwrap();
        let local_p = ds.id_map("http://g").unwrap().to_local(p).unwrap();
        assert_eq!(stats.predicates[&local_p].count, 4);
    }

    #[test]
    fn id_map_order_preservation_tracking() {
        // First graph into a fresh dataset: global ids are assigned in
        // local id order, so the translation is monotone.
        let mut g1 = Graph::new();
        g1.insert(&t("http://x/s0", "http://x/o0"));
        g1.insert(&t("http://x/s1", "http://x/o1"));
        let mut ds = Dataset::new();
        ds.insert_graph("http://a", g1);
        assert!(ds.id_map("http://a").unwrap().order_preserving());

        // Second graph shares terms already interned globally: its local
        // order no longer matches global order.
        let mut g2 = Graph::new();
        g2.insert(&t("http://x/z-first-local", "http://x/o0"));
        g2.insert(&t("http://x/s0", "http://x/o9"));
        ds.insert_graph("http://b", g2);
        assert!(ds.id_map("http://a").unwrap().order_preserving());
        assert!(!ds.id_map("http://b").unwrap().order_preserving());
    }

    #[test]
    fn stats_generation_witnesses_every_mutation_path() {
        let mut ds = Dataset::new();
        let g0 = ds.stats_generation();

        let mut g = Graph::new();
        g.insert(&t("http://x/s0", "http://x/o0"));
        ds.insert_graph("http://g", g);
        let g1 = ds.stats_generation();
        assert_ne!(g0, g1, "insert bumps");

        ds.append_triples("http://g", vec![t("http://x/s1", "http://x/o1")])
            .unwrap();
        let g2 = ds.stats_generation();
        assert_ne!(
            g1, g2,
            "append batch bumps (even below the merge threshold)"
        );

        // Replacing a graph under the same URI — even with the same triple
        // count and only already-interned terms — must bump: cached plans
        // were optimized for the *old* graph's statistics.
        let mut replacement = Graph::new();
        replacement.insert(&t("http://x/s1", "http://x/o0"));
        replacement.insert(&t("http://x/s0", "http://x/o1"));
        ds.insert_graph("http://g", replacement);
        assert_ne!(g2, ds.stats_generation(), "same-URI replacement bumps");

        // Pure reads don't.
        let before = ds.stats_generation();
        let _ = ds.graph_stats("http://g");
        let _ = ds.term_ranks();
        assert_eq!(before, ds.stats_generation());
        // Clones carry the witness.
        assert_eq!(ds.clone().stats_generation(), before);
    }

    #[test]
    fn append_of_out_of_order_term_flips_order_preservation() {
        // Regression for the incremental id-map extension: graph A is
        // order-preserving until an append introduces a term whose global
        // id (assigned earlier, via graph B) is smaller than A's current
        // maximum. `extend_from` must flip the flag — a stale `true` would
        // let the optimizer plan merge joins whose sortedness precondition
        // is false (the run-time check would save correctness but silently
        // eat the rewrite on every query).
        let mut a = Graph::new();
        a.insert(&t("http://x/a0", "http://x/oa0"));
        a.insert(&t("http://x/a1", "http://x/oa1"));
        let mut ds = Dataset::new();
        ds.insert_graph("http://a", a);
        // B's fresh terms get globals past all of A's.
        let mut b = Graph::new();
        b.insert(&t("http://x/b0", "http://x/ob0"));
        ds.insert_graph("http://b", b);
        assert!(ds.id_map("http://a").unwrap().order_preserving());

        // An order-compatible append (all-new terms intern past A's max, in
        // local order) must NOT flip the flag.
        ds.append_triples("http://a", vec![t("http://x/a2", "http://x/oa2")])
            .unwrap();
        assert!(ds.id_map("http://a").unwrap().order_preserving());

        // Append to A a triple whose subject is brand new (global past
        // everything) and whose object is B's term (small global): the
        // suffix walk sees ascending-then-descending globals and must mark
        // the map non-monotone.
        ds.append_triples(
            "http://a",
            vec![Triple::new(
                Term::iri("http://x/a3"),
                Term::iri("http://x/p"),
                Term::iri("http://x/b0"),
            )],
        )
        .unwrap();
        let map = ds.id_map("http://a").unwrap();
        assert!(
            !map.order_preserving(),
            "append broke local→global monotonicity; the flag must flip"
        );
        // The map itself really is non-monotone (the flag tells the truth).
        assert!(map.to_global.windows(2).any(|w| w[1] <= w[0]));
    }

    #[test]
    fn term_ranks_follow_order_cmp_and_share_ties() {
        let mut g = Graph::new();
        // Deliberately intern out of dictionary order.
        g.insert(&Triple::new(
            Term::iri("http://x/zzz"),
            Term::iri("http://x/p"),
            Term::integer(2),
        ));
        g.insert(&Triple::new(
            Term::iri("http://x/aaa"),
            Term::iri("http://x/p"),
            Term::integer(1),
        ));
        let mut ds = Dataset::new();
        ds.insert_graph("http://g", g);

        let ranks = ds.term_ranks();
        assert_eq!(ranks.len(), ds.interner().len());
        // Rank comparison must reproduce order_cmp on every pair.
        for (a, ta) in ds.interner().iter() {
            for (b, tb) in ds.interner().iter() {
                assert_eq!(
                    ranks.rank(a).unwrap().cmp(&ranks.rank(b).unwrap()),
                    ta.order_cmp(tb),
                    "ranks diverge from order_cmp for {ta} vs {tb}"
                );
            }
        }
        // The cache invalidates when the interner grows.
        ds.append_triples("http://g", vec![t("http://x/new", "http://x/onew")])
            .unwrap();
        let fresh = ds.term_ranks();
        assert_eq!(fresh.len(), ds.interner().len());
        assert!(fresh.len() > ranks.len());
    }

    #[test]
    fn append_is_copy_on_write_for_shared_graphs() {
        let mut g = Graph::new();
        g.insert(&t("http://x/s0", "http://x/o0"));
        let shared = Arc::new(g);
        let mut ds = Dataset::new();
        ds.insert_shared("http://g", Arc::clone(&shared));
        ds.append_triples("http://g", vec![t("http://x/s1", "http://x/o1")])
            .unwrap();
        // The dataset's copy grew; the external handle did not.
        assert_eq!(ds.graph("http://g").unwrap().len(), 2);
        assert_eq!(shared.len(), 1);
    }

    #[test]
    fn replacing_a_graph_keeps_ids_stable() {
        let mut g1 = Graph::new();
        g1.insert(&Triple::new(
            Term::iri("http://x/s"),
            Term::iri("http://x/p"),
            Term::integer(1),
        ));
        let mut ds = Dataset::new();
        ds.insert_graph("http://g", g1);
        let old = ds.lookup(&Term::iri("http://x/s")).unwrap();

        let mut g2 = Graph::new();
        g2.insert(&Triple::new(
            Term::iri("http://x/s"),
            Term::iri("http://x/p"),
            Term::integer(2),
        ));
        ds.insert_graph("http://g", g2);
        // The global interner is append-only: ids survive replacement.
        assert_eq!(ds.lookup(&Term::iri("http://x/s")), Some(old));
        let map = ds.id_map("http://g").unwrap();
        let local = ds
            .graph("http://g")
            .unwrap()
            .term_id(&Term::iri("http://x/s"))
            .unwrap();
        assert_eq!(map.to_global(local), old);
    }
}
