//! Named-graph dataset with a dataset-wide term id space.
//!
//! The paper's queries address graphs by URI (`FROM <http://dbpedia.org>`,
//! cross-graph joins between DBpedia and YAGO). A [`Dataset`] maps graph URIs
//! to independent [`Graph`] stores.
//!
//! Each [`Graph`] interns terms into its own dense local id space. So that a
//! query evaluator can keep *every* intermediate binding as a `u32` — even
//! across graphs — the dataset additionally maintains a **shared interner**:
//! when a graph is inserted, all of its terms are interned into the dataset
//! interner and a bidirectional local↔global id translation ([`GraphIdMap`])
//! is recorded. Global ids are therefore canonical across the whole dataset:
//! two ids are equal iff the terms are equal, no matter which graphs they
//! were scanned from, which lets joins, DISTINCT, and GROUP BY hash plain
//! integers instead of strings.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use crate::graph::{Graph, GraphStats};
use crate::interner::{Interner, TermId};
use crate::term::{Term, Triple};

/// Bidirectional translation between one graph's local [`TermId`]s and the
/// dataset-wide global id space.
#[derive(Debug, Default, Clone)]
pub struct GraphIdMap {
    /// `to_global[local.index()]` is the global id of the local term.
    to_global: Vec<TermId>,
    /// Global id → local id, for binding query constants / bound variables
    /// back into a graph's index space.
    from_global: HashMap<TermId, TermId>,
}

impl GraphIdMap {
    fn build(graph: &Graph, interner: &mut Interner) -> Self {
        let mut map = GraphIdMap::default();
        map.extend_from(graph, interner);
        map
    }

    /// Intern any graph-local terms past the end of this map into the
    /// dataset interner and record their translations. Local ids are dense
    /// and append-only, so this is an incremental suffix walk — the
    /// mutation path ([`Dataset::append_triples`]) calls it instead of
    /// rebuilding the whole map.
    fn extend_from(&mut self, graph: &Graph, interner: &mut Interner) {
        let graph_interner = graph.interner();
        let known = self.to_global.len();
        if known == graph_interner.len() {
            return;
        }
        self.to_global.reserve(graph_interner.len() - known);
        for (local, term) in graph_interner.iter().skip(known) {
            let global = interner.intern(term.clone());
            debug_assert_eq!(self.to_global.len(), local.index());
            self.to_global.push(global);
            self.from_global.insert(global, local);
        }
    }

    /// Translate a local id to its global id.
    ///
    /// # Panics
    /// Panics if `local` did not come from the mapped graph.
    #[inline]
    pub fn to_global(&self, local: TermId) -> TermId {
        self.to_global[local.index()]
    }

    /// Translate a global id to this graph's local id, `None` when the term
    /// does not occur in the graph.
    #[inline]
    pub fn to_local(&self, global: TermId) -> Option<TermId> {
        self.from_global.get(&global).copied()
    }
}

/// A cached statistics snapshot plus the graph compaction generation it was
/// taken at. Stats refresh when the graph's delta merges into the slabs
/// (generation bump), so between merges they lag by at most the delta size.
#[derive(Debug, Clone)]
struct StatsEntry {
    generation: u64,
    stats: Arc<GraphStats>,
}

/// A collection of named graphs sharing one global term id space.
#[derive(Debug, Default, Clone)]
pub struct Dataset {
    graphs: BTreeMap<String, Arc<Graph>>,
    interner: Interner,
    id_maps: BTreeMap<String, Arc<GraphIdMap>>,
    /// Optimizer statistics, snapshotted at graph insert and refreshed
    /// delta-aware on the [`Dataset::append_triples`] mutation path.
    stats: BTreeMap<String, StatsEntry>,
}

impl Dataset {
    /// Empty dataset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert (or replace) a named graph.
    ///
    /// The graph is [compacted](Graph::compact) first: datasets freeze their
    /// graphs behind `Arc`s, so query-time scans should run on pure slab
    /// ranges with an empty delta.
    pub fn insert_graph(&mut self, uri: impl Into<String>, mut graph: Graph) {
        graph.compact();
        self.insert_shared(uri, Arc::new(graph));
    }

    /// Insert a pre-shared graph handle (as-is: a shared graph cannot be
    /// compacted here, so its delta — if any — stays live and scans merge
    /// it on the fly).
    pub fn insert_shared(&mut self, uri: impl Into<String>, graph: Arc<Graph>) {
        let uri = uri.into();
        let map = GraphIdMap::build(&graph, &mut self.interner);
        self.id_maps.insert(uri.clone(), Arc::new(map));
        self.stats.insert(
            uri.clone(),
            StatsEntry {
                generation: graph.compaction_generation(),
                stats: Arc::new(graph.stats()),
            },
        );
        self.graphs.insert(uri, graph);
    }

    /// Append triples to a graph already in the dataset, keeping the whole
    /// derived state consistent: newly seen terms are interned and added to
    /// the graph's local↔global id translation incrementally, and — the
    /// delta-aware part — whenever the insert burst causes the graph's
    /// `BTreeSet` delta to merge into the slabs (threshold-triggered
    /// compaction), the optimizer's [`PredicateStats`](crate::graph::PredicateStats)
    /// are recomputed, so long-lived mutable graphs keep statistics-driven
    /// BGP ordering honest. Between merges the stats lag by at most the
    /// delta size, which the threshold bounds.
    ///
    /// Copy-on-write: if the graph `Arc` is shared outside the dataset, the
    /// dataset's copy is cloned first and external handles stop observing
    /// the appends.
    ///
    /// Returns the number of *new* triples, or `None` for an unknown graph.
    pub fn append_triples<I>(&mut self, uri: &str, triples: I) -> Option<usize>
    where
        I: IntoIterator<Item = Triple>,
    {
        let graph_arc = self.graphs.get_mut(uri)?;
        let graph = Arc::make_mut(graph_arc);
        let mut added = 0usize;
        for t in triples {
            if graph.insert(&t) {
                added += 1;
            }
        }
        let map = Arc::make_mut(self.id_maps.get_mut(uri).expect("id map tracks graph"));
        map.extend_from(graph, &mut self.interner);
        let entry = self.stats.get_mut(uri).expect("stats track graph");
        if entry.generation != graph.compaction_generation() {
            *entry = StatsEntry {
                generation: graph.compaction_generation(),
                stats: Arc::new(graph.stats()),
            };
        }
        Some(added)
    }

    /// Force a statistics refresh for one graph regardless of compaction
    /// generation (e.g. before a batch of optimizer-sensitive queries).
    /// Returns `false` for an unknown graph.
    pub fn refresh_stats(&mut self, uri: &str) -> bool {
        let Some(graph) = self.graphs.get(uri) else {
            return false;
        };
        let entry = StatsEntry {
            generation: graph.compaction_generation(),
            stats: Arc::new(graph.stats()),
        };
        self.stats.insert(uri.to_string(), entry);
        true
    }

    /// Fetch a graph by URI.
    pub fn graph(&self, uri: &str) -> Option<&Arc<Graph>> {
        self.graphs.get(uri)
    }

    /// The local↔global id translation for a graph.
    pub fn id_map(&self, uri: &str) -> Option<&Arc<GraphIdMap>> {
        self.id_maps.get(uri)
    }

    /// Cached optimizer statistics for a graph (snapshotted at insert,
    /// refreshed when [`Dataset::append_triples`] merges a delta).
    pub fn graph_stats(&self, uri: &str) -> Option<&Arc<GraphStats>> {
        self.stats.get(uri).map(|e| &e.stats)
    }

    /// The dataset-wide interner (global id space).
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Resolve a global id to its term.
    ///
    /// # Panics
    /// Panics if the id is not a global id of this dataset.
    #[inline]
    pub fn resolve(&self, id: TermId) -> &Term {
        self.interner.resolve(id)
    }

    /// Look up a term's global id without interning.
    pub fn lookup(&self, term: &Term) -> Option<TermId> {
        self.interner.get(term)
    }

    /// All graph URIs, sorted.
    pub fn graph_uris(&self) -> impl Iterator<Item = &str> {
        self.graphs.keys().map(String::as_str)
    }

    /// Number of named graphs.
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// True when the dataset has no graphs.
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }

    /// Total triples across all graphs.
    pub fn total_triples(&self) -> usize {
        self.graphs.values().map(|g| g.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{Term, Triple};

    #[test]
    fn graphs_are_independent() {
        let mut a = Graph::new();
        a.insert(&Triple::new(
            Term::iri("http://x/s"),
            Term::iri("http://x/p"),
            Term::iri("http://x/o"),
        ));
        let b = Graph::new();
        let mut ds = Dataset::new();
        ds.insert_graph("http://dbpedia.org", a);
        ds.insert_graph("http://yago-knowledge.org", b);
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.graph("http://dbpedia.org").unwrap().len(), 1);
        assert_eq!(ds.graph("http://yago-knowledge.org").unwrap().len(), 0);
        assert!(ds.graph("http://missing").is_none());
        assert_eq!(ds.total_triples(), 1);
    }

    #[test]
    fn uris_sorted() {
        let mut ds = Dataset::new();
        ds.insert_graph("http://b", Graph::new());
        ds.insert_graph("http://a", Graph::new());
        let uris: Vec<_> = ds.graph_uris().collect();
        assert_eq!(uris, vec!["http://a", "http://b"]);
    }

    #[test]
    fn shared_interner_unifies_ids_across_graphs() {
        let shared = Term::iri("http://x/both");
        let only_a = Term::iri("http://x/a");
        let only_b = Term::iri("http://x/b");
        let p = Term::iri("http://x/p");

        let mut a = Graph::new();
        a.insert(&Triple::new(only_a.clone(), p.clone(), shared.clone()));
        let mut b = Graph::new();
        b.insert(&Triple::new(shared.clone(), p.clone(), only_b.clone()));

        let mut ds = Dataset::new();
        ds.insert_graph("http://ga", a);
        ds.insert_graph("http://gb", b);

        // The shared term has one global id reachable from both graphs.
        let global = ds.lookup(&shared).expect("shared term interned");
        let map_a = ds.id_map("http://ga").unwrap();
        let map_b = ds.id_map("http://gb").unwrap();
        let local_a = ds.graph("http://ga").unwrap().term_id(&shared).unwrap();
        let local_b = ds.graph("http://gb").unwrap().term_id(&shared).unwrap();
        assert_eq!(map_a.to_global(local_a), global);
        assert_eq!(map_b.to_global(local_b), global);
        assert_eq!(map_a.to_local(global), Some(local_a));
        assert_eq!(map_b.to_local(global), Some(local_b));

        // Terms absent from a graph translate to None.
        let only_b_global = ds.lookup(&only_b).unwrap();
        assert_eq!(map_a.to_local(only_b_global), None);
        assert_eq!(ds.resolve(only_b_global), &only_b);
    }

    fn t(s: &str, o: &str) -> Triple {
        Triple::new(Term::iri(s), Term::iri("http://x/p"), Term::iri(o))
    }

    #[test]
    fn append_triples_extends_id_map_incrementally() {
        let mut g = Graph::new();
        g.insert(&t("http://x/s0", "http://x/o0"));
        let mut ds = Dataset::new();
        ds.insert_graph("http://g", g);

        let added = ds
            .append_triples(
                "http://g",
                vec![
                    t("http://x/s1", "http://x/o1"),
                    t("http://x/s0", "http://x/o0"), // duplicate
                ],
            )
            .unwrap();
        assert_eq!(added, 1);
        assert_eq!(ds.graph("http://g").unwrap().len(), 2);

        // The new term has a global id and a working round trip.
        let global = ds.lookup(&Term::iri("http://x/s1")).expect("interned");
        let map = ds.id_map("http://g").unwrap();
        let local = ds
            .graph("http://g")
            .unwrap()
            .term_id(&Term::iri("http://x/s1"))
            .unwrap();
        assert_eq!(map.to_global(local), global);
        assert_eq!(map.to_local(global), Some(local));
        assert!(ds.append_triples("http://missing", vec![]).is_none());
    }

    #[test]
    fn stats_refresh_when_delta_merges() {
        // Threshold 4 → the graph keeps a live delta inside the dataset
        // (insert_shared does not compact).
        let mut g = Graph::with_delta_threshold(4);
        g.insert(&t("http://x/s0", "http://x/o0"));
        let mut ds = Dataset::new();
        ds.insert_shared("http://g", Arc::new(g));
        assert_eq!(ds.graph_stats("http://g").unwrap().triples, 1);

        // Two appends: delta at 3, no merge yet → snapshot stays stale.
        ds.append_triples(
            "http://g",
            vec![t("http://x/s1", "http://x/o1"), t("http://x/s2", "http://x/o2")],
        )
        .unwrap();
        assert_eq!(ds.graph("http://g").unwrap().len(), 3);
        assert_eq!(
            ds.graph_stats("http://g").unwrap().triples,
            1,
            "stats lag while the delta is live"
        );

        // One more append reaches the threshold: delta merges, stats refresh.
        ds.append_triples("http://g", vec![t("http://x/s3", "http://x/o3")])
            .unwrap();
        assert_eq!(ds.graph("http://g").unwrap().delta_len(), 0);
        let stats = ds.graph_stats("http://g").unwrap();
        assert_eq!(stats.triples, 4);
        let p = ds.lookup(&Term::iri("http://x/p")).unwrap();
        let local_p = ds.id_map("http://g").unwrap().to_local(p).unwrap();
        assert_eq!(stats.predicates[&local_p].count, 4);

        // Explicit refresh picks up un-merged rows on demand.
        ds.append_triples("http://g", vec![t("http://x/s4", "http://x/o4")])
            .unwrap();
        assert_eq!(ds.graph_stats("http://g").unwrap().triples, 4);
        assert!(ds.refresh_stats("http://g"));
        assert_eq!(ds.graph_stats("http://g").unwrap().triples, 5);
        assert!(!ds.refresh_stats("http://missing"));
    }

    #[test]
    fn append_is_copy_on_write_for_shared_graphs() {
        let mut g = Graph::new();
        g.insert(&t("http://x/s0", "http://x/o0"));
        let shared = Arc::new(g);
        let mut ds = Dataset::new();
        ds.insert_shared("http://g", Arc::clone(&shared));
        ds.append_triples("http://g", vec![t("http://x/s1", "http://x/o1")])
            .unwrap();
        // The dataset's copy grew; the external handle did not.
        assert_eq!(ds.graph("http://g").unwrap().len(), 2);
        assert_eq!(shared.len(), 1);
    }

    #[test]
    fn replacing_a_graph_keeps_ids_stable() {
        let mut g1 = Graph::new();
        g1.insert(&Triple::new(
            Term::iri("http://x/s"),
            Term::iri("http://x/p"),
            Term::integer(1),
        ));
        let mut ds = Dataset::new();
        ds.insert_graph("http://g", g1);
        let old = ds.lookup(&Term::iri("http://x/s")).unwrap();

        let mut g2 = Graph::new();
        g2.insert(&Triple::new(
            Term::iri("http://x/s"),
            Term::iri("http://x/p"),
            Term::integer(2),
        ));
        ds.insert_graph("http://g", g2);
        // The global interner is append-only: ids survive replacement.
        assert_eq!(ds.lookup(&Term::iri("http://x/s")), Some(old));
        let map = ds.id_map("http://g").unwrap();
        let local = ds.graph("http://g").unwrap().term_id(&Term::iri("http://x/s")).unwrap();
        assert_eq!(map.to_global(local), old);
    }
}
