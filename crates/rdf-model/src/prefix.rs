//! Prefix management and CURIE (compact URI) expansion.
//!
//! The RDFFrames API lets users write `dbpp:starring` instead of the full
//! IRI; a [`PrefixMap`] carried by the `KnowledgeGraph` handles expansion and
//! the reverse compaction used when pretty-printing generated SPARQL.

use std::collections::BTreeMap;

use crate::error::{ModelError, Result};

/// An ordered prefix → namespace map.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct PrefixMap {
    entries: BTreeMap<String, String>,
}

impl PrefixMap {
    /// Empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Map with the standard `rdf:`, `rdfs:`, `xsd:` prefixes pre-declared.
    pub fn with_defaults() -> Self {
        let mut m = Self::new();
        m.declare("rdf", crate::vocab::rdf::NS);
        m.declare("rdfs", crate::vocab::rdfs::NS);
        m.declare("xsd", crate::vocab::xsd::NS);
        m
    }

    /// Declare (or overwrite) a prefix.
    pub fn declare(&mut self, prefix: impl Into<String>, namespace: impl Into<String>) {
        self.entries.insert(prefix.into(), namespace.into());
    }

    /// Look up a namespace.
    pub fn namespace(&self, prefix: &str) -> Option<&str> {
        self.entries.get(prefix).map(String::as_str)
    }

    /// Iterate `(prefix, namespace)` pairs in prefix order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(p, n)| (p.as_str(), n.as_str()))
    }

    /// Number of declared prefixes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no prefixes are declared.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Expand a name that may be a CURIE (`dbpp:starring`), an absolute IRI
    /// (`http://...` or `<http://...>`), into a full IRI string.
    pub fn expand(&self, name: &str) -> Result<String> {
        if let Some(stripped) = name.strip_prefix('<') {
            return Ok(stripped.trim_end_matches('>').to_string());
        }
        if name.starts_with("http://") || name.starts_with("https://") || name.starts_with("urn:") {
            return Ok(name.to_string());
        }
        match name.split_once(':') {
            Some((prefix, local)) => match self.entries.get(prefix) {
                Some(ns) => Ok(format!("{ns}{local}")),
                None => Err(ModelError::UnknownPrefix(prefix.to_string())),
            },
            None => Err(ModelError::InvalidIri(name.to_string())),
        }
    }

    /// Compact a full IRI back into a CURIE when a declared namespace is a
    /// prefix of it; otherwise return `<iri>` form.
    pub fn compact(&self, iri: &str) -> String {
        let mut best: Option<(&str, &str)> = None;
        for (p, ns) in &self.entries {
            if let Some(local) = iri.strip_prefix(ns.as_str()) {
                // Prefer the longest namespace match; local names with '/'
                // or '#' are not valid CURIEs, so skip them.
                if !local.is_empty()
                    && !local.contains(['/', '#', ':'])
                    && best.is_none_or(|(_, bns)| ns.len() > bns.len())
                {
                    best = Some((p, ns));
                }
            }
        }
        match best {
            Some((p, ns)) => format!("{p}:{}", &iri[ns.len()..]),
            None => format!("<{iri}>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dbp() -> PrefixMap {
        let mut m = PrefixMap::with_defaults();
        m.declare("dbpp", "http://dbpedia.org/property/");
        m.declare("dbpr", "http://dbpedia.org/resource/");
        m
    }

    #[test]
    fn expand_curie() {
        let m = dbp();
        assert_eq!(
            m.expand("dbpp:starring").unwrap(),
            "http://dbpedia.org/property/starring"
        );
    }

    #[test]
    fn expand_absolute_and_angle() {
        let m = dbp();
        assert_eq!(m.expand("http://x/a").unwrap(), "http://x/a");
        assert_eq!(m.expand("<http://x/a>").unwrap(), "http://x/a");
    }

    #[test]
    fn expand_unknown_prefix_errors() {
        let m = dbp();
        assert!(matches!(
            m.expand("nope:thing"),
            Err(ModelError::UnknownPrefix(p)) if p == "nope"
        ));
    }

    #[test]
    fn compact_longest_match() {
        let mut m = dbp();
        m.declare("dbp", "http://dbpedia.org/");
        assert_eq!(
            m.compact("http://dbpedia.org/property/starring"),
            "dbpp:starring"
        );
        assert_eq!(m.compact("http://unknown.org/x"), "<http://unknown.org/x>");
    }

    #[test]
    fn compact_rejects_slashy_local_names() {
        let m = dbp();
        // local name would contain '/', not a valid CURIE
        assert_eq!(
            m.compact("http://dbpedia.org/property/a/b"),
            "<http://dbpedia.org/property/a/b>"
        );
    }
}
