//! Error type shared across the model crate.

use std::fmt;

/// Errors produced while parsing or manipulating RDF data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// Syntax error in a serialized RDF document (N-Triples, term syntax).
    Syntax {
        /// 1-based line number where the error was detected.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// An IRI failed validation.
    InvalidIri(String),
    /// A literal's lexical form does not match its datatype.
    InvalidLiteral(String),
    /// A prefixed name used an undeclared prefix.
    UnknownPrefix(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Syntax { line, message } => {
                write!(f, "syntax error at line {line}: {message}")
            }
            ModelError::InvalidIri(iri) => write!(f, "invalid IRI: {iri}"),
            ModelError::InvalidLiteral(msg) => write!(f, "invalid literal: {msg}"),
            ModelError::UnknownPrefix(p) => write!(f, "unknown prefix: {p}"),
        }
    }
}

impl std::error::Error for ModelError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ModelError>;
