//! Term interning: maps [`Term`]s to dense `u32` ids.
//!
//! The graph store and the SPARQL evaluator operate on `TermId`s so that
//! triple-pattern matching, joins and grouping hash integers instead of
//! strings. The interner is append-only; ids are stable for the lifetime of
//! the store.
//!
//! Each distinct term is stored exactly once behind an `Arc<Term>` shared by
//! the id→term table and the term→id map, and [`Interner::intern`] performs
//! a single hash lookup on the hit path (the overwhelmingly common case when
//! loading triples) with no clone of the probed term.

use std::sync::Arc;

use crate::hash::FxHashMap;
use crate::term::Term;

/// Dense identifier for an interned term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub u32);

impl TermId {
    /// Index into the interner's term table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Append-only bidirectional map between [`Term`]s and [`TermId`]s.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    terms: Vec<Arc<Term>>,
    ids: FxHashMap<Arc<Term>, TermId>,
}

impl Interner {
    /// Empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a term, returning its id (existing or fresh).
    ///
    /// Hit path: one hash lookup, no allocation. Miss path: the term is
    /// wrapped in an `Arc` shared by both directions of the map, so each
    /// distinct term is stored once.
    pub fn intern(&mut self, term: Term) -> TermId {
        if let Some(&id) = self.ids.get(&term) {
            return id;
        }
        let id = TermId(
            u32::try_from(self.terms.len()).expect("interner overflow: more than 2^32 terms"),
        );
        let shared = Arc::new(term);
        self.terms.push(Arc::clone(&shared));
        self.ids.insert(shared, id);
        id
    }

    /// Rebuild an interner from its persisted id-ordered term table. Ids are
    /// reassigned densely in iteration order, so feeding back the terms from
    /// [`Interner::iter`] reproduces the original id assignment exactly.
    /// Returns `None` when the list contains duplicates (a corrupt snapshot
    /// — a healthy interner never stores a term twice).
    pub(crate) fn from_terms(terms: Vec<Term>) -> Option<Self> {
        let count = terms.len();
        let mut interner = Interner::new();
        interner.terms.reserve(count);
        interner.ids.reserve(count);
        for term in terms {
            interner.intern(term);
        }
        (interner.len() == count).then_some(interner)
    }

    /// Look up an id without interning. `None` if the term was never seen.
    pub fn get(&self, term: &Term) -> Option<TermId> {
        self.ids.get(term).copied()
    }

    /// Resolve an id back to its term.
    ///
    /// # Panics
    /// Panics if the id did not come from this interner.
    #[inline]
    pub fn resolve(&self, id: TermId) -> &Term {
        &self.terms[id.index()]
    }

    /// Number of distinct interned terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when no terms have been interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterate over all `(id, term)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &Term)> {
        self.terms
            .iter()
            .enumerate()
            .map(|(i, t)| (TermId(i as u32), t.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern(Term::iri("http://x/a"));
        let b = i.intern(Term::iri("http://x/b"));
        let a2 = i.intern(Term::iri("http://x/a"));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn resolve_roundtrip() {
        let mut i = Interner::new();
        let t = Term::string("hello");
        let id = i.intern(t.clone());
        assert_eq!(i.resolve(id), &t);
        assert_eq!(i.get(&t), Some(id));
        assert_eq!(i.get(&Term::string("other")), None);
    }

    #[test]
    fn literals_with_different_tags_are_distinct() {
        use crate::term::Literal;
        let mut i = Interner::new();
        let plain = i.intern(Term::string("x"));
        let tagged = i.intern(Term::Literal(Literal::lang_string("x", "en")));
        assert_ne!(plain, tagged);
    }

    #[test]
    fn terms_are_stored_once() {
        let mut i = Interner::new();
        let id = i.intern(Term::string("shared"));
        // The Vec entry and the map key point at the same allocation: the
        // term is reachable from two places but owned once.
        assert_eq!(Arc::strong_count(&i.terms[id.index()]), 2);
    }
}
