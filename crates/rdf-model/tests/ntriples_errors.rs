//! Hardening tests for the N-Triples parser: malformed input must yield a
//! typed [`ModelError::Syntax`] with the right line number — never a
//! panic, and never a silently skipped line.

use rdf_model::error::ModelError;
use rdf_model::ntriples::{parse_document, write_document};
use rdf_model::term::{Term, Triple};

fn syntax_line(err: ModelError) -> usize {
    match err {
        ModelError::Syntax { line, .. } => line,
        other => panic!("expected Syntax error, got {other:?}"),
    }
}

#[test]
fn every_prefix_truncation_is_handled() {
    // A document exercising every token kind, cut at every byte boundary:
    // each prefix must parse or fail typed — no panics, no partial junk.
    let doc = "<http://x/s> <http://x/p> \"a\\u00e9b\"@en-GB .\n\
               _:b0 <http://x/q> \"\\\"quoted\\\" \\\\ \\n\"^^<http://www.w3.org/2001/XMLSchema#string> .\n\
               <http://x/s> <http://x/r> _:b1 .\n";
    for cut in 0..doc.len() {
        if !doc.is_char_boundary(cut) {
            continue;
        }
        // Either outcome is legal; what's illegal is a panic or a triple
        // materialized from a torn line.
        match parse_document(&doc[..cut]) {
            Ok(triples) => {
                // Whatever parsed must be well-formed: it re-serializes
                // and reparses to itself.
                let doc2 = write_document(triples.clone().into_iter());
                assert_eq!(
                    parse_document(&doc2).expect("rendered triples reparse"),
                    triples
                );
            }
            Err(e) => {
                let _ = e.to_string(); // Display must not panic either
            }
        }
    }
}

#[test]
fn garbage_lines_report_their_line_number() {
    let cases = [
        // (document, expected failing line)
        (
            "<http://x/s> <http://x/p> <http://x/o> .\ngarbage here\n",
            2,
        ),
        ("# comment\n\n<http://x/s> <http://x/p .\n", 3),
        ("\u{0}\u{1}\u{2}", 1),
        ("<http://x/s> <http://x/p> <http://x/o> .\n\n<a> <b>\n", 3),
    ];
    for (doc, want_line) in cases {
        let err = parse_document(doc).expect_err("garbage must not parse");
        assert_eq!(syntax_line(err), want_line, "doc: {doc:?}");
    }
}

#[test]
fn unterminated_iri() {
    let err = parse_document("<http://x/s <http://x/p> <http://x/o> .").unwrap_err();
    assert_eq!(syntax_line(err), 1);
}

#[test]
fn unterminated_string() {
    let err = parse_document("<http://x/s> <http://x/p> \"no closing quote .").unwrap_err();
    assert_eq!(syntax_line(err), 1);
}

#[test]
fn bad_escape_sequence() {
    let err = parse_document("<http://x/s> <http://x/p> \"bad \\q escape\" .").unwrap_err();
    assert!(matches!(err, ModelError::Syntax { line: 1, .. }));
}

#[test]
fn truncated_unicode_escape() {
    for lit in ["\"\\u12\"", "\"\\u\"", "\"\\U0001F60\""] {
        let doc = format!("<http://x/s> <http://x/p> {lit} .");
        let err = parse_document(&doc).expect_err("truncated \\u escape must fail");
        assert_eq!(syntax_line(err), 1, "literal: {lit}");
    }
}

#[test]
fn lone_surrogate_escape() {
    let err = parse_document("<http://x/s> <http://x/p> \"\\uD800\" .").unwrap_err();
    assert!(matches!(err, ModelError::Syntax { line: 1, .. }));
}

#[test]
fn missing_terminating_dot() {
    let err = parse_document("<http://x/s> <http://x/p> <http://x/o>").unwrap_err();
    assert_eq!(syntax_line(err), 1);
}

#[test]
fn trailing_content_after_dot() {
    let err = parse_document("<http://x/s> <http://x/p> <http://x/o> . extra").unwrap_err();
    assert_eq!(syntax_line(err), 1);
}

#[test]
fn literal_in_subject_or_predicate_position() {
    for doc in [
        "\"lit\" <http://x/p> <http://x/o> .",
        "<http://x/s> \"lit\" <http://x/o> .",
        "<http://x/s> _:b <http://x/o> .",
    ] {
        let err = parse_document(doc).expect_err("invalid term position must fail");
        assert!(
            matches!(err, ModelError::Syntax { line: 1, .. }),
            "doc: {doc}"
        );
    }
}

#[test]
fn empty_blank_node_label() {
    let err = parse_document("_: <http://x/p> <http://x/o> .").unwrap_err();
    assert!(matches!(err, ModelError::Syntax { line: 1, .. }));
}

#[test]
fn error_line_numbers_skip_comments_and_blanks() {
    let doc = "# header\n\
               \n\
               <http://x/s> <http://x/p> <http://x/o> .\n\
               # another comment\n\
               broken\n";
    assert_eq!(syntax_line(parse_document(doc).unwrap_err()), 5);
}

#[test]
fn roundtrip_survives_hostile_strings() {
    let triples = vec![
        Triple::new(
            Term::iri("http://x/s"),
            Term::iri("http://x/p"),
            Term::string("tab\there \"quotes\" back\\slash\nnewline é ☃"),
        ),
        Triple::new(
            Term::blank("b0"),
            Term::iri("http://x/p"),
            Term::iri("http://x/o"),
        ),
    ];
    let doc = write_document(triples.clone().into_iter());
    let back = parse_document(&doc).expect("serializer output must reparse");
    assert_eq!(back, triples);
}

#[test]
fn no_silent_skips_on_mixed_documents() {
    // One bad line poisons the parse: callers must never receive a
    // partial result they could mistake for the whole document.
    let doc = "<http://x/a> <http://x/p> <http://x/o> .\n\
               BAD LINE\n\
               <http://x/b> <http://x/p> <http://x/o> .\n";
    assert!(parse_document(doc).is_err());
}
