//! Property-based tests for the RDF model: N-Triples round trips with
//! arbitrary terms, and index consistency of the triple store.

use proptest::prelude::*;
use rdf_model::{ntriples, Graph, Literal, Term, Triple};

fn iri_strategy() -> impl Strategy<Value = Term> {
    "[a-z]{1,8}".prop_map(|s| Term::iri(format!("http://example.org/{s}")))
}

fn literal_strategy() -> impl Strategy<Value = Term> {
    prop_oneof![
        // Plain strings incl. characters needing escapes.
        "[ -~]{0,12}".prop_map(Term::string),
        any::<i64>().prop_map(Term::integer),
        any::<bool>().prop_map(|b| Term::Literal(Literal::boolean(b))),
        ("[a-z]{1,6}", "[a-z]{2}").prop_map(|(s, l)| Term::Literal(Literal::lang_string(s, l))),
        // Unicode content.
        "\\PC{0,8}".prop_map(Term::string),
    ]
}

fn term_strategy() -> impl Strategy<Value = Term> {
    prop_oneof![
        iri_strategy(),
        literal_strategy(),
        "[A-Za-z0-9]{1,6}".prop_map(Term::blank),
    ]
}

fn triple_strategy() -> impl Strategy<Value = Triple> {
    (
        prop_oneof![iri_strategy(), "[A-Za-z0-9]{1,6}".prop_map(Term::blank)],
        iri_strategy(),
        term_strategy(),
    )
        .prop_map(|(s, p, o)| Triple::new(s, p, o))
}

/// One step of the slab/delta storage model exercise.
#[derive(Debug, Clone)]
enum StorageOp {
    Insert(Triple),
    Compact,
}

fn storage_op_strategy() -> impl Strategy<Value = StorageOp> {
    // Unweighted arms (the offline proptest shim has no weight syntax):
    // repeat the insert arm to keep compactions the rarer op.
    prop_oneof![
        triple_strategy().prop_map(StorageOp::Insert),
        triple_strategy().prop_map(StorageOp::Insert),
        triple_strategy().prop_map(StorageOp::Insert),
        triple_strategy().prop_map(StorageOp::Insert),
        Just(StorageOp::Compact),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn ntriples_roundtrip(triples in proptest::collection::vec(triple_strategy(), 0..20)) {
        let mut g = Graph::new();
        for t in &triples {
            g.insert(t);
        }
        let doc = ntriples::write_document(g.iter_triples());
        let back = ntriples::parse_into_graph(&doc).expect("reparses");
        prop_assert_eq!(g.len(), back.len());
        let a: Vec<Triple> = g.iter_triples().collect();
        let b: Vec<Triple> = back.iter_triples().collect();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn indexes_agree_on_every_access_path(
        triples in proptest::collection::vec(triple_strategy(), 1..25)
    ) {
        let mut g = Graph::new();
        for t in &triples {
            g.insert(t);
        }
        // For every stored triple, all bound/unbound pattern combinations
        // must find it.
        for (s, p, o) in g.iter_ids() {
            for mask in 0..8u8 {
                let qs = (mask & 4 != 0).then_some(s);
                let qp = (mask & 2 != 0).then_some(p);
                let qo = (mask & 1 != 0).then_some(o);
                let found = g
                    .match_pattern(qs, qp, qo)
                    .any(|(ms, mp, mo)| ms == s && mp == p && mo == o);
                prop_assert!(found, "mask {mask:#05b} misses triple");
            }
        }
    }

    #[test]
    fn pattern_counts_are_consistent(
        triples in proptest::collection::vec(triple_strategy(), 1..25)
    ) {
        let mut g = Graph::new();
        for t in &triples {
            g.insert(t);
        }
        // Sum of per-predicate counts equals total.
        let total: usize = g
            .predicates()
            .map(|p| g.count_pattern(None, Some(p), None))
            .sum();
        prop_assert_eq!(total, g.len());
        // Stats agree with exact counts per predicate.
        let stats = g.stats();
        for p in g.predicates() {
            let exact = g.count_pattern(None, Some(p), None);
            prop_assert_eq!(stats.predicates[&p].count, exact);
        }
    }

    #[test]
    fn interleaved_inserts_and_compactions_match_naive_model(
        ops in proptest::collection::vec(storage_op_strategy(), 1..60),
        // Tiny auto-compaction threshold so slab merges happen mid-stream
        // even without explicit Compact ops.
        threshold in 2usize..6,
    ) {
        // Model: a plain Vec of id triples, deduplicated, sorted on demand.
        let mut g = Graph::with_delta_threshold(threshold);
        let mut model: Vec<(rdf_model::TermId, rdf_model::TermId, rdf_model::TermId)> = Vec::new();
        for op in &ops {
            match op {
                StorageOp::Insert(t) => {
                    let inserted = g.insert(t);
                    let ids = (
                        g.term_id(&t.subject).unwrap(),
                        g.term_id(&t.predicate).unwrap(),
                        g.term_id(&t.object).unwrap(),
                    );
                    prop_assert_eq!(inserted, !model.contains(&ids));
                    if inserted {
                        model.push(ids);
                    }
                }
                StorageOp::Compact => g.compact(),
            }

            // After every step the store must agree with the naive model on
            // every access-path shape for a sample of bound values.
            prop_assert_eq!(g.len(), model.len());
            let mut sorted = model.clone();
            sorted.sort();
            let scanned: Vec<_> = g.iter_ids().collect();
            prop_assert_eq!(&scanned, &sorted, "full scan must be sorted SPO");
            if let Some(&(s, p, o)) = model.last() {
                for mask in 0..8u8 {
                    let qs = (mask & 4 != 0).then_some(s);
                    let qp = (mask & 2 != 0).then_some(p);
                    let qo = (mask & 1 != 0).then_some(o);
                    let mut expect: Vec<_> = model
                        .iter()
                        .filter(|(ms, mp, mo)| {
                            qs.is_none_or(|v| v == *ms)
                                && qp.is_none_or(|v| v == *mp)
                                && qo.is_none_or(|v| v == *mo)
                        })
                        .copied()
                        .collect();
                    expect.sort();
                    let mut got: Vec<_> = g.match_pattern(qs, qp, qo).collect();
                    let mut via_visit = Vec::new();
                    let n = g.for_each_match(qs, qp, qo, |a, b, c| via_visit.push((a, b, c)));
                    prop_assert_eq!(&got, &via_visit, "iterator and visitor disagree");
                    prop_assert_eq!(n as usize, via_visit.len());
                    prop_assert_eq!(g.count_pattern(qs, qp, qo), expect.len());
                    got.sort();
                    prop_assert_eq!(got, expect, "mask {:#05b}", mask);
                }
            }
        }

        // Final compaction drains the delta without changing contents.
        let before: Vec<_> = g.iter_ids().collect();
        g.compact();
        prop_assert_eq!(g.delta_len(), 0);
        let after: Vec<_> = g.iter_ids().collect();
        prop_assert_eq!(before, after);
    }

    #[test]
    fn order_preservation_flag_is_truthful_under_appends(
        initial_a in proptest::collection::vec(triple_strategy(), 1..10),
        initial_b in proptest::collection::vec(triple_strategy(), 1..10),
        batches in proptest::collection::vec(
            proptest::collection::vec(triple_strategy(), 1..5), 0..6),
        targets in proptest::collection::vec(any::<bool>(), 6),
    ) {
        // Audit property for `GraphIdMap::extend_from`: after ANY sequence
        // of appends to either of two overlapping graphs, each graph's
        // `order_preserving()` must equal the ground truth "the local→global
        // translation is strictly increasing" — i.e. "index scans emit
        // globally-sorted ids". A stale `true` would let the optimizer plan
        // merge joins whose precondition is false; a spurious `false` would
        // silently disable the rewrite forever.
        let mut ds = rdf_model::Dataset::new();
        let mut ga = Graph::new();
        for t in &initial_a {
            ga.insert(t);
        }
        let mut gb = Graph::new();
        for t in &initial_b {
            gb.insert(t);
        }
        ds.insert_graph("http://a", ga);
        ds.insert_graph("http://b", gb);
        for (i, batch) in batches.iter().enumerate() {
            let uri = if targets[i] { "http://a" } else { "http://b" };
            ds.append_triples(uri, batch.clone()).unwrap();
        }
        for uri in ["http://a", "http://b"] {
            let graph = ds.graph(uri).unwrap();
            let map = ds.id_map(uri).unwrap();
            let mut globals: Vec<rdf_model::TermId> = Vec::new();
            for (local, _) in graph.interner().iter() {
                globals.push(map.to_global(local));
            }
            let truly_monotone = globals.windows(2).all(|w| w[0] < w[1]);
            prop_assert_eq!(
                map.order_preserving(),
                truly_monotone,
                "flag lies for {} (globals: {:?})",
                uri,
                globals
            );
        }
    }

    #[test]
    fn term_display_parse_roundtrip(term in term_strategy()) {
        // Round-trip any term through an N-Triples line as the object.
        let t = Triple::new(
            Term::iri("http://example.org/s"),
            Term::iri("http://example.org/p"),
            term,
        );
        let line = format!("{t}\n");
        let parsed = ntriples::parse_document(&line).expect("parses");
        prop_assert_eq!(parsed.len(), 1);
        prop_assert_eq!(&parsed[0], &t);
    }
}
