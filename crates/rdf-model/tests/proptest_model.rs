//! Property-based tests for the RDF model: N-Triples round trips with
//! arbitrary terms, and index consistency of the triple store.

use proptest::prelude::*;
use rdf_model::{ntriples, Graph, Literal, Term, Triple};

fn iri_strategy() -> impl Strategy<Value = Term> {
    "[a-z]{1,8}".prop_map(|s| Term::iri(format!("http://example.org/{s}")))
}

fn literal_strategy() -> impl Strategy<Value = Term> {
    prop_oneof![
        // Plain strings incl. characters needing escapes.
        "[ -~]{0,12}".prop_map(Term::string),
        any::<i64>().prop_map(Term::integer),
        any::<bool>().prop_map(|b| Term::Literal(Literal::boolean(b))),
        ("[a-z]{1,6}", "[a-z]{2}").prop_map(|(s, l)| Term::Literal(Literal::lang_string(s, l))),
        // Unicode content.
        "\\PC{0,8}".prop_map(Term::string),
    ]
}

fn term_strategy() -> impl Strategy<Value = Term> {
    prop_oneof![
        iri_strategy(),
        literal_strategy(),
        "[A-Za-z0-9]{1,6}".prop_map(Term::blank),
    ]
}

fn triple_strategy() -> impl Strategy<Value = Triple> {
    (
        prop_oneof![iri_strategy(), "[A-Za-z0-9]{1,6}".prop_map(Term::blank)],
        iri_strategy(),
        term_strategy(),
    )
        .prop_map(|(s, p, o)| Triple::new(s, p, o))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn ntriples_roundtrip(triples in proptest::collection::vec(triple_strategy(), 0..20)) {
        let mut g = Graph::new();
        for t in &triples {
            g.insert(t);
        }
        let doc = ntriples::write_document(g.iter_triples());
        let back = ntriples::parse_into_graph(&doc).expect("reparses");
        prop_assert_eq!(g.len(), back.len());
        let a: Vec<Triple> = g.iter_triples().collect();
        let b: Vec<Triple> = back.iter_triples().collect();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn indexes_agree_on_every_access_path(
        triples in proptest::collection::vec(triple_strategy(), 1..25)
    ) {
        let mut g = Graph::new();
        for t in &triples {
            g.insert(t);
        }
        // For every stored triple, all bound/unbound pattern combinations
        // must find it.
        for (s, p, o) in g.iter_ids() {
            for mask in 0..8u8 {
                let qs = (mask & 4 != 0).then_some(s);
                let qp = (mask & 2 != 0).then_some(p);
                let qo = (mask & 1 != 0).then_some(o);
                let found = g
                    .match_pattern(qs, qp, qo)
                    .any(|(ms, mp, mo)| ms == s && mp == p && mo == o);
                prop_assert!(found, "mask {mask:#05b} misses triple");
            }
        }
    }

    #[test]
    fn pattern_counts_are_consistent(
        triples in proptest::collection::vec(triple_strategy(), 1..25)
    ) {
        let mut g = Graph::new();
        for t in &triples {
            g.insert(t);
        }
        // Sum of per-predicate counts equals total.
        let total: usize = g
            .predicates()
            .map(|p| g.count_pattern(None, Some(p), None))
            .sum();
        prop_assert_eq!(total, g.len());
        // Stats agree with exact counts per predicate.
        let stats = g.stats();
        for p in g.predicates() {
            let exact = g.count_pattern(None, Some(p), None);
            prop_assert_eq!(stats.predicates[&p].count, exact);
        }
    }

    #[test]
    fn term_display_parse_roundtrip(term in term_strategy()) {
        // Round-trip any term through an N-Triples line as the object.
        let t = Triple::new(
            Term::iri("http://example.org/s"),
            Term::iri("http://example.org/p"),
            term,
        );
        let line = format!("{t}\n");
        let parsed = ntriples::parse_document(&line).expect("parses");
        prop_assert_eq!(parsed.len(), 1);
        prop_assert_eq!(&parsed[0], &t);
    }
}
