//! Snapshot round-trip properties: for arbitrary datasets — delta-resident
//! graphs, freshly compacted graphs, empty graphs, huge literals —
//! `decode(encode(ds))` reproduces the slabs, deltas, interner, and
//! generation counters exactly, and a snapshot of the snapshot is
//! byte-identical. Plus the `Dataset::open` contract on real directories:
//! absent and empty paths yield fresh, usable stores.

use std::sync::atomic::{AtomicU64, Ordering};

use proptest::collection::vec;
use proptest::{prop_assert, prop_assert_eq, proptest};
use rdf_model::persist::format::{decode_dataset, encode_dataset};
use rdf_model::{Dataset, Graph, Term, Triple};

/// Deterministic term from a small index; `kind` selects the shape.
fn term(kind: u8, idx: u32) -> Term {
    match kind % 6 {
        0 => Term::iri(format!("http://example.org/resource/{idx}")),
        1 => Term::blank(format!("b{idx}")),
        2 => Term::string(format!("plain value {idx}")),
        3 => Term::Literal(rdf_model::Literal::lang_string(
            format!("wert {idx}"),
            if idx.is_multiple_of(2) { "de" } else { "en-GB" },
        )),
        4 => Term::integer(i64::from(idx)),
        // Huge literal: forces multi-kilobyte strings through the codec.
        _ => Term::string(format!(
            "huge {idx} {}",
            "x".repeat(4096 + idx as usize % 4096)
        )),
    }
}

fn triple(s: u32, p: u32, o: u32, kind: u8) -> Triple {
    Triple::new(
        Term::iri(format!("http://example.org/s/{s}")),
        Term::iri(format!("http://example.org/p/{p}")),
        term(kind, o),
    )
}

/// Logical + physical equality of two datasets, as a `prop_assert`-able
/// result.
fn assert_datasets_identical(a: &Dataset, b: &Dataset) -> Result<(), String> {
    if a.stats_generation() != b.stats_generation() {
        return Err(format!(
            "stats_generation {} != {}",
            a.stats_generation(),
            b.stats_generation()
        ));
    }
    let uris: Vec<&str> = a.graph_uris().collect();
    if uris != b.graph_uris().collect::<Vec<_>>() {
        return Err("graph uri sets differ".into());
    }
    for uri in uris {
        let (ga, gb) = (a.graph(uri).unwrap(), b.graph(uri).unwrap());
        if ga.spo_slab() != gb.spo_slab() {
            return Err(format!("{uri}: slabs differ"));
        }
        if ga.delta_ids().collect::<Vec<_>>() != gb.delta_ids().collect::<Vec<_>>() {
            return Err(format!("{uri}: deltas differ"));
        }
        if ga.delta_threshold() != gb.delta_threshold() {
            return Err(format!("{uri}: thresholds differ"));
        }
        if ga.compaction_generation() != gb.compaction_generation() {
            return Err(format!("{uri}: compaction generations differ"));
        }
        if ga.interner().len() != gb.interner().len()
            || ga
                .interner()
                .iter()
                .zip(gb.interner().iter())
                .any(|((ia, ta), (ib, tb))| ia != ib || ta != tb)
        {
            return Err(format!("{uri}: graph interners differ"));
        }
        if a.id_map(uri).unwrap().order_preserving() != b.id_map(uri).unwrap().order_preserving() {
            return Err(format!("{uri}: order_preserving flags differ"));
        }
    }
    if a.interner().len() != b.interner().len() {
        return Err("dataset interners differ in length".into());
    }
    Ok(())
}

proptest! {
    #![proptest_config(proptest::test_runner::ProptestConfig {
        cases: 64,
        ..proptest::test_runner::ProptestConfig::default()
    })]

    #[test]
    fn snapshot_roundtrip_preserves_everything(
        base in vec((0u32..40, 0u32..6, 0u32..60, 0u8..6), 0..120),
        appends in vec((0u32..40, 0u32..6, 0u32..60, 0u8..6), 0..40),
        threshold in 1usize..32,
        graph_count in 1usize..4,
    ) {
        let mut ds = Dataset::new();
        for g in 0..graph_count {
            let uri = format!("http://graphs/{g}");
            let mut graph = Graph::with_delta_threshold(threshold);
            for (i, &(s, p, o, kind)) in base.iter().enumerate() {
                if i % graph_count == g {
                    graph.insert(&triple(s, p, o, kind));
                }
            }
            // insert_graph compacts: the last graph stays delta-resident
            // via appends below, earlier ones are pure slab.
            ds.insert_graph(uri, graph);
        }
        // Always keep one graph empty to exercise the empty-slab path.
        ds.insert_graph("http://graphs/empty", Graph::new());
        let last = format!("http://graphs/{}", graph_count - 1);
        if !appends.is_empty() {
            ds.append_triples(
                &last,
                appends.iter().map(|&(s, p, o, kind)| triple(s, p, o, kind)),
            );
        }

        let bytes = encode_dataset(&ds);
        let back = match decode_dataset(&bytes) {
            Ok(ds) => ds,
            Err(e) => return Err(format!("decode failed: {e}")),
        };
        assert_datasets_identical(&ds, &back)?;
        // Byte stability: a snapshot of the snapshot is the snapshot.
        prop_assert_eq!(encode_dataset(&back).len(), bytes.len());
        prop_assert!(encode_dataset(&back) == bytes, "re-encode not byte-identical");
    }
}

// ---------------------------------------------------------------------------
// Dataset::open on real directories.

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "rdf-persist-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

#[test]
fn open_absent_path_yields_fresh_usable_store() {
    let dir = scratch_dir("absent");
    assert!(!dir.exists());
    let mut store = Dataset::open(&dir).expect("absent path opens fresh");
    assert!(store.dataset().is_empty());
    let mut g = Graph::new();
    g.insert(&triple(1, 1, 1, 0));
    store.insert_graph("http://g", &g).unwrap();
    assert_eq!(store.dataset().graph("http://g").unwrap().len(), 1);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn open_empty_dir_yields_fresh_store() {
    let dir = scratch_dir("empty");
    std::fs::create_dir_all(&dir).unwrap();
    let store = Dataset::open(&dir).expect("empty dir opens fresh");
    assert!(store.dataset().is_empty());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn reopen_after_clean_close_is_byte_stable() {
    let dir = scratch_dir("stable");
    {
        let mut store = Dataset::open(&dir).unwrap();
        let mut g = Graph::with_delta_threshold(4);
        for i in 0..25 {
            g.insert(&triple(i, i % 3, i * 7, (i % 6) as u8));
        }
        store.insert_graph("http://g", &g).unwrap();
        store
            .append_triples("http://g", vec![triple(100, 1, 100, 5)])
            .unwrap();
        store.checkpoint().unwrap();
    }
    let first = std::fs::read(dir.join("snapshot.rds")).unwrap();
    {
        // Reopen (replays nothing), checkpoint again: the snapshot must
        // not change by a single byte.
        let mut store = Dataset::open(&dir).unwrap();
        assert!(store.recovery().snapshot_loaded);
        assert_eq!(store.recovery().replayed, 0);
        store.checkpoint().unwrap();
    }
    let second = std::fs::read(dir.join("snapshot.rds")).unwrap();
    assert_eq!(first, second, "snapshot of the snapshot must be identical");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn wal_survives_without_checkpoint_on_real_fs() {
    let dir = scratch_dir("wal");
    {
        let mut store = Dataset::open(&dir).unwrap();
        let mut g = Graph::new();
        g.insert(&triple(1, 2, 3, 4));
        store.insert_graph("http://g", &g).unwrap();
        // No checkpoint: durability must come from the WAL alone.
    }
    let store = Dataset::open(&dir).unwrap();
    assert!(!store.recovery().snapshot_loaded);
    assert_eq!(store.recovery().replayed, 1);
    assert_eq!(store.dataset().graph("http://g").unwrap().len(), 1);
    std::fs::remove_dir_all(&dir).unwrap();
}
