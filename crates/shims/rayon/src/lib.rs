//! Offline stand-in for the `rayon` crate: a hand-rolled work-stealing
//! thread pool.
//!
//! The build environment has no network access, so this workspace vendors
//! the minimal pool surface the engine's parallel operators use:
//!
//! - [`ThreadPool::scope`] — scoped task spawning (borrows from the
//!   enclosing stack frame, all tasks joined before the scope returns),
//! - [`ThreadPool::join`] — two-way fork/join,
//! - [`ThreadPool::run_chunks`] — chunked parallel-for over an index
//!   range, returning per-chunk results **in chunk order** so reductions
//!   are deterministic regardless of which worker ran which chunk.
//!
//! Scheduling is work-stealing over per-worker deques: a worker pops its
//! own queue LIFO and steals FIFO from a victim when empty. `new(n)`
//! spawns `n - 1` background workers; the thread that submits work
//! participates as the `n`-th executor while it waits, so an idle pool
//! costs `n - 1` parked threads and a busy one uses exactly `n`.
//!
//! Steal counts are tracked per submitted batch (observability for the
//! engine's `ExecStats`), and panics inside tasks are caught, recorded,
//! and re-raised on the submitting thread after every task finished —
//! never a deadlock, never a silently lost worker.

use std::cell::Cell;
use std::collections::{HashMap, VecDeque};
use std::marker::PhantomData;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;
use std::time::Duration;

/// A lifetime-erased queued task. Soundness: every task is joined (via its
/// batch's [`Latch`]) before the borrows it captures go out of scope — the
/// same argument `std::thread::scope` makes.
type Task = Box<dyn FnOnce() + Send + 'static>;

thread_local! {
    /// Set by the executor right before running a task: did this task come
    /// off another worker's queue? The task wrapper folds it into its
    /// batch's steal counter.
    static STOLEN: Cell<bool> = const { Cell::new(false) };
}

/// Completion tracking for one batch of tasks (a scope or a chunked run).
struct Latch {
    pending: AtomicUsize,
    poisoned: AtomicBool,
    steals: AtomicU64,
    done_mutex: Mutex<()>,
    done_cv: Condvar,
}

impl Latch {
    fn new() -> Self {
        Latch {
            pending: AtomicUsize::new(0),
            poisoned: AtomicBool::new(false),
            steals: AtomicU64::new(0),
            done_mutex: Mutex::new(()),
            done_cv: Condvar::new(),
        }
    }

    fn complete(&self) {
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _g = self.done_mutex.lock().expect("latch mutex");
            self.done_cv.notify_all();
        }
    }
}

/// State shared between the pool handle and its background workers.
struct Shared {
    /// One deque per background worker (at least one even for a pool with
    /// no workers, so a single-threaded pool can still queue and self-drain).
    queues: Vec<Mutex<VecDeque<Task>>>,
    /// Round-robin push target.
    next_queue: AtomicUsize,
    /// Total successful steals (one worker executing from another's queue)
    /// over the pool's lifetime.
    steals: AtomicU64,
    shutdown: AtomicBool,
    sleep_mutex: Mutex<()>,
    wake_cv: Condvar,
}

impl Shared {
    fn push(&self, task: Task) {
        let q = self.next_queue.fetch_add(1, Ordering::Relaxed) % self.queues.len();
        self.queues[q].lock().expect("task queue").push_back(task);
        let _g = self.sleep_mutex.lock().expect("sleep mutex");
        self.wake_cv.notify_all();
    }

    /// A worker's next task: own queue LIFO, then steal FIFO from victims.
    fn take(&self, me: usize) -> Option<(Task, bool)> {
        if let Some(t) = self.queues[me].lock().expect("task queue").pop_back() {
            return Some((t, false));
        }
        let n = self.queues.len();
        for off in 1..n {
            let victim = (me + off) % n;
            if let Some(t) = self.queues[victim].lock().expect("task queue").pop_front() {
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some((t, true));
            }
        }
        None
    }

    /// The submitting thread's next task while it helps drain a batch (not
    /// counted as a steal — the submitter has no home queue).
    fn take_any(&self) -> Option<Task> {
        for q in &self.queues {
            if let Some(t) = q.lock().expect("task queue").pop_front() {
                return Some(t);
            }
        }
        None
    }

    fn run(task: Task, stolen: bool) {
        STOLEN.with(|s| s.set(stolen));
        task();
    }
}

fn worker_loop(shared: Arc<Shared>, me: usize) {
    loop {
        if let Some((task, stolen)) = shared.take(me) {
            Shared::run(task, stolen);
            continue;
        }
        let guard = shared.sleep_mutex.lock().expect("sleep mutex");
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        // Timed wait: a push between `take` and `wait` is re-checked within
        // one tick even if its notify raced past us.
        let _ = shared
            .wake_cv
            .wait_timeout(guard, Duration::from_millis(10))
            .expect("sleep cv");
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
    }
}

/// Results of one [`ThreadPool::run_chunks`] call.
pub struct ChunkRun<R> {
    /// Per-chunk results, **in chunk order** (chunk `c` covered rows
    /// `[c * chunk_size, (c + 1) * chunk_size)`), independent of which
    /// worker ran which chunk — the deterministic-reduction contract.
    pub results: Vec<R>,
    /// Chunks executed (including a single inline chunk).
    pub chunks: u64,
    /// Tasks of this run a worker executed from another worker's queue.
    pub steals: u64,
}

/// A hand-rolled work-stealing thread pool.
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<thread::JoinHandle<()>>,
    threads: usize,
}

impl ThreadPool {
    /// Pool with `threads`-way parallelism: `threads - 1` background
    /// workers plus the submitting thread (which executes tasks while it
    /// waits on a batch).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let workers = threads - 1;
        let shared = Arc::new(Shared {
            queues: (0..workers.max(1))
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            next_queue: AtomicUsize::new(0),
            steals: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            sleep_mutex: Mutex::new(()),
            wake_cv: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("pool-worker-{i}"))
                    .spawn(move || worker_loop(shared, i))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool {
            shared,
            handles,
            threads,
        }
    }

    /// A process-wide pool of this size, created on first use and reused by
    /// every later caller (queries share one set of workers instead of
    /// spawning threads per evaluation).
    pub fn global(threads: usize) -> Arc<ThreadPool> {
        static POOLS: OnceLock<Mutex<HashMap<usize, Arc<ThreadPool>>>> = OnceLock::new();
        let pools = POOLS.get_or_init(|| Mutex::new(HashMap::new()));
        let mut pools = pools.lock().expect("pool registry");
        Arc::clone(
            pools
                .entry(threads.max(1))
                .or_insert_with(|| Arc::new(ThreadPool::new(threads))),
        )
    }

    /// Configured parallelism (background workers + the submitting thread).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Lifetime steal count across all batches (monotonic).
    pub fn total_steals(&self) -> u64 {
        self.shared.steals.load(Ordering::Relaxed)
    }

    /// Run `f` with a [`Scope`] that can spawn borrowing tasks. Every
    /// spawned task completes before this returns (the submitting thread
    /// executes queued tasks while it waits). A panicking task poisons the
    /// scope, which re-panics here after all tasks finished.
    pub fn scope<'env, F, R>(&'env self, f: F) -> R
    where
        F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> R,
    {
        let latch = Arc::new(Latch::new());
        let scope = Scope {
            shared: &self.shared,
            latch: Arc::clone(&latch),
            scope: PhantomData,
            env: PhantomData,
        };
        let result = {
            // Waits for stragglers even if `f` unwinds, so borrows stay
            // valid for as long as any task can run.
            let _wait = WaitGuard {
                shared: &self.shared,
                latch: &latch,
            };
            f(&scope)
        };
        if latch.poisoned.load(Ordering::Acquire) {
            panic!("a task spawned in ThreadPool::scope panicked");
        }
        result
    }

    /// Two-way fork/join: `a` runs as a pool task while `b` runs on the
    /// calling thread.
    pub fn join<A, B, FA, FB>(&self, a: FA, b: FB) -> (A, B)
    where
        A: Send,
        B: Send,
        FA: FnOnce() -> A + Send,
        FB: FnOnce() -> B + Send,
    {
        let mut ra = None;
        let mut rb = None;
        self.scope(|s| {
            s.spawn(|| ra = Some(a()));
            rb = Some(b());
        });
        (ra.expect("joined task ran"), rb.expect("inline task ran"))
    }

    /// Chunked parallel-for over `0..len`: chunk `c` covers
    /// `[c * chunk_size, min((c + 1) * chunk_size, len))` and `f(c, range)`
    /// runs once per chunk, on whichever executor gets to it first. Results
    /// come back in chunk order ([`ChunkRun::results`]), so any
    /// order-sensitive reduction over them is deterministic. A single-chunk
    /// run executes inline with no queue traffic.
    pub fn run_chunks<R, F>(&self, len: usize, chunk_size: usize, f: F) -> ChunkRun<R>
    where
        R: Send,
        F: Fn(usize, Range<usize>) -> R + Sync,
    {
        let chunk_size = chunk_size.max(1);
        let n_chunks = len.div_ceil(chunk_size);
        if n_chunks <= 1 {
            let results = if len == 0 {
                Vec::new()
            } else {
                vec![f(0, 0..len)]
            };
            return ChunkRun {
                results,
                chunks: n_chunks as u64,
                steals: 0,
            };
        }
        let slots: Vec<Mutex<Option<R>>> = (0..n_chunks).map(|_| Mutex::new(None)).collect();
        let latch = Arc::new(Latch::new());
        {
            let slots_ref = &slots;
            let f_ref = &f;
            let _wait = WaitGuard {
                shared: &self.shared,
                latch: &latch,
            };
            for (c, slot) in slots_ref.iter().enumerate() {
                let lo = c * chunk_size;
                let hi = (lo + chunk_size).min(len);
                latch.pending.fetch_add(1, Ordering::AcqRel);
                let task_latch = Arc::clone(&latch);
                let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                    if STOLEN.with(|s| s.get()) {
                        task_latch.steals.fetch_add(1, Ordering::Relaxed);
                    }
                    match catch_unwind(AssertUnwindSafe(|| f_ref(c, lo..hi))) {
                        Ok(v) => *slot.lock().expect("chunk slot") = Some(v),
                        Err(_) => task_latch.poisoned.store(true, Ordering::Release),
                    }
                    task_latch.complete();
                });
                // Erase the borrow lifetime; the WaitGuard above keeps the
                // borrowed data alive until every task completed.
                let task: Task =
                    unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Task>(task) };
                self.shared.push(task);
            }
        }
        if latch.poisoned.load(Ordering::Acquire) {
            panic!("a chunk task in ThreadPool::run_chunks panicked");
        }
        ChunkRun {
            results: slots
                .into_iter()
                .map(|m| {
                    m.into_inner()
                        .expect("chunk slot")
                        .expect("every chunk completed")
                })
                .collect(),
            chunks: n_chunks as u64,
            steals: latch.steals.load(Ordering::Relaxed),
        }
    }

    /// Execute queued tasks on the calling thread until `latch` drains.
    fn help_until(shared: &Shared, latch: &Latch) {
        loop {
            if latch.pending.load(Ordering::Acquire) == 0 {
                return;
            }
            if let Some(task) = shared.take_any() {
                Shared::run(task, false);
                continue;
            }
            let guard = latch.done_mutex.lock().expect("latch mutex");
            if latch.pending.load(Ordering::Acquire) == 0 {
                return;
            }
            // Timed: a task queued by another task between `take_any` and
            // `wait` is picked up within a tick.
            let _ = latch
                .done_cv
                .wait_timeout(guard, Duration::from_millis(1))
                .expect("latch cv");
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _g = self.shared.sleep_mutex.lock().expect("sleep mutex");
            self.shared.wake_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Drains the batch on drop — including during an unwind — so no task can
/// outlive the data it borrows.
struct WaitGuard<'a> {
    shared: &'a Shared,
    latch: &'a Latch,
}

impl Drop for WaitGuard<'_> {
    fn drop(&mut self) {
        ThreadPool::help_until(self.shared, self.latch);
    }
}

/// Spawn surface handed to [`ThreadPool::scope`] closures. The two
/// invariant lifetimes reproduce `std::thread::scope`'s soundness argument:
/// spawned closures may borrow anything outliving the `scope` call (`'env`)
/// and nothing shorter.
pub struct Scope<'scope, 'env: 'scope> {
    shared: &'scope Arc<Shared>,
    latch: Arc<Latch>,
    scope: PhantomData<&'scope mut &'scope ()>,
    env: PhantomData<&'env mut &'env ()>,
}

impl<'scope> Scope<'scope, '_> {
    /// Queue a task; it runs on some pool executor before the enclosing
    /// [`ThreadPool::scope`] returns.
    pub fn spawn<F>(&'scope self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.latch.pending.fetch_add(1, Ordering::AcqRel);
        let latch = Arc::clone(&self.latch);
        let task: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            if STOLEN.with(|s| s.get()) {
                latch.steals.fetch_add(1, Ordering::Relaxed);
            }
            if catch_unwind(AssertUnwindSafe(f)).is_err() {
                latch.poisoned.store(true, Ordering::Release);
            }
            latch.complete();
        });
        // Erase `'scope`; the scope's WaitGuard joins every task before the
        // borrowed data can go away.
        let task: Task =
            unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Task>(task) };
        self.shared.push(task);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunked_results_come_back_in_chunk_order() {
        let pool = ThreadPool::new(4);
        let data: Vec<u64> = (0..10_000).collect();
        let run = pool.run_chunks(data.len(), 256, |c, range| {
            (c, data[range].iter().sum::<u64>())
        });
        assert_eq!(run.chunks, 40);
        // Chunk indexes in order, sums reduce to the sequential total.
        for (i, (c, _)) in run.results.iter().enumerate() {
            assert_eq!(i, *c);
        }
        let total: u64 = run.results.iter().map(|(_, s)| s).sum();
        assert_eq!(total, data.iter().sum::<u64>());
    }

    #[test]
    fn chunk_order_is_identical_across_runs_and_pool_sizes() {
        let data: Vec<u64> = (0..5_000).map(|i| i * 7 % 1013).collect();
        let reduce = |pool: &ThreadPool, chunk: usize| -> Vec<u64> {
            pool.run_chunks(data.len(), chunk, |_, range| data[range].to_vec())
                .results
                .into_iter()
                .flatten()
                .collect()
        };
        let seq: Vec<u64> = data.clone();
        for threads in [1, 2, 4] {
            let pool = ThreadPool::new(threads);
            for chunk in [1, 64, 333, 5_000, 10_000] {
                assert_eq!(reduce(&pool, chunk), seq, "threads={threads} chunk={chunk}");
            }
        }
    }

    #[test]
    fn scoped_spawn_borrows_and_joins() {
        let pool = ThreadPool::new(3);
        let data = [1u64, 2, 3, 4];
        let partials: Vec<Mutex<u64>> = (0..4).map(|_| Mutex::new(0)).collect();
        pool.scope(|s| {
            for (i, v) in data.iter().enumerate() {
                let slot = &partials[i];
                s.spawn(move || *slot.lock().unwrap() = v * 10);
            }
        });
        let got: Vec<u64> = partials.iter().map(|m| *m.lock().unwrap()).collect();
        assert_eq!(got, vec![10, 20, 30, 40]);
    }

    #[test]
    fn join_runs_both_sides() {
        let pool = ThreadPool::new(2);
        let (a, b) = pool.join(|| 6 * 7, || "ok");
        assert_eq!(a, 42);
        assert_eq!(b, "ok");
    }

    #[test]
    fn single_threaded_pool_still_completes_everything() {
        let pool = ThreadPool::new(1);
        let run = pool.run_chunks(1_000, 100, |_, range| range.len());
        assert_eq!(run.results.iter().sum::<usize>(), 1_000);
        let (a, b) = pool.join(|| 1, || 2);
        assert_eq!((a, b), (1, 2));
    }

    #[test]
    fn task_panic_is_propagated_not_deadlocked() {
        let pool = ThreadPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run_chunks(100, 10, |c, _| {
                if c == 5 {
                    panic!("boom");
                }
                c
            })
        }));
        assert!(result.is_err());
        // The pool survives and serves later batches.
        let run = pool.run_chunks(10, 5, |_, range| range.len());
        assert_eq!(run.results.iter().sum::<usize>(), 10);
    }

    #[test]
    fn global_pools_are_shared_by_size() {
        let a = ThreadPool::global(3);
        let b = ThreadPool::global(3);
        assert!(Arc::ptr_eq(&a, &b));
        let c = ThreadPool::global(2);
        assert!(!Arc::ptr_eq(&a, &c));
    }
}
