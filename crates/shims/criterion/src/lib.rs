//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset this workspace's benches use — `Criterion`,
//! `benchmark_group` with `sample_size`/`warm_up_time`/`measurement_time`,
//! `bench_function`, `Bencher::iter`, and the `criterion_group!`/
//! `criterion_main!` macros — as a plain wall-clock harness that prints a
//! mean/min/max line per benchmark. No statistics, plots, or CLI parsing.

use std::time::{Duration, Instant};

/// Prevent the optimizer from eliding a computed value.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }

    /// Benchmark a function outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        group.bench_function(name, f);
        group.finish();
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up period before sampling starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Soft budget for the sampling phase.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Run one benchmark and print its timing line.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = if self.name.is_empty() {
            name.to_string()
        } else {
            format!("{}/{name}", self.name)
        };

        // Warm-up: run until the warm-up budget elapses.
        let warm_start = Instant::now();
        loop {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }

        let mut samples = Vec::with_capacity(self.sample_size);
        let budget_start = Instant::now();
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.elapsed);
            if budget_start.elapsed() >= self.measurement_time && samples.len() >= 2 {
                break;
            }
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        println!(
            "{label:<48} mean {:>10.3} ms   min {:>10.3} ms   max {:>10.3} ms   ({} samples)",
            mean.as_secs_f64() * 1e3,
            min.as_secs_f64() * 1e3,
            max.as_secs_f64() * 1e3,
            samples.len()
        );
        self
    }

    /// End the group.
    pub fn finish(&mut self) {}
}

/// Passed to each benchmark closure; times the hot loop.
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Time one execution of `f` (the routine under test).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.elapsed += start.elapsed();
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("test");
        group.sample_size(2);
        group.warm_up_time(Duration::ZERO);
        group.measurement_time(Duration::from_millis(10));
        let mut runs = 0;
        group.bench_function("noop", |b| {
            runs += 1;
            b.iter(|| 1 + 1)
        });
        group.finish();
        assert!(runs >= 2);
    }
}
