//! Value-generation strategies.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erase for use in [`Union`] / `prop_oneof!`.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe mirror of [`Strategy`].
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<T, S: Strategy<Value = T>> DynStrategy<T> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> T {
        self.generate(rng)
    }
}

/// A boxed strategy (the result of [`Strategy::boxed`]).
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Union over `arms` (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.arms.len());
        self.arms[idx].generate(rng)
    }
}

/// Always produce a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Regex-subset string strategy (e.g. `"[a-z]{1,8}"`, `"\\PC{0,8}"`).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_from_pattern(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Sample from the full domain of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rand::RngCore::next_u64(rng) as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rand::RngCore::next_u64(rng) & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite doubles across a wide range of magnitudes.
        let mantissa: f64 = rng.gen();
        let exp = rng.gen_range(-64i32..64);
        (mantissa - 0.5) * (2f64).powi(exp)
    }
}

/// Strategy for the full domain of `T` (`any::<T>()`).
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Construct the [`Any`] strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
