//! Generation from the small regex subset the workspace's strategies use:
//! sequences of literal characters, `[...]` character classes (with `a-z`
//! ranges), and `\PC` ("any non-control character"), each optionally
//! followed by `{m}` or `{m,n}` repetition.

use rand::Rng;

use crate::test_runner::TestRng;

enum Atom {
    Class(Vec<char>),
    Literal(char),
}

/// Non-control characters sampled for `\PC`: printable ASCII plus a few
/// multibyte code points so escaping/round-trip paths see real Unicode.
fn printable_pool() -> Vec<char> {
    let mut pool: Vec<char> = (0x20u8..=0x7E).map(|b| b as char).collect();
    pool.extend(['é', 'ß', 'Ω', 'λ', '中', '日', '♥', 'π']);
    pool
}

fn parse(pattern: &str) -> Vec<(Atom, usize, usize)> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut atoms = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                i += 1;
                let mut set = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        assert!(lo <= hi, "bad class range in {pattern}");
                        set.extend((lo..=hi).filter(|c| c.is_ascii() || lo > '\u{7f}'));
                        i += 3;
                    } else {
                        set.push(chars[i]);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in {pattern}");
                i += 1; // consume ']'
                Atom::Class(set)
            }
            '\\' => {
                // Only `\PC` (non-control) is supported.
                assert!(
                    chars.get(i + 1) == Some(&'P') && chars.get(i + 2) == Some(&'C'),
                    "unsupported escape in pattern {pattern}"
                );
                i += 3;
                Atom::Class(printable_pool())
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        // Optional {m} / {m,n} quantifier.
        let (lo, hi) = if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .expect("unterminated quantifier")
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (m.parse().unwrap(), n.parse().unwrap()),
                None => {
                    let m: usize = body.parse().unwrap();
                    (m, m)
                }
            }
        } else {
            (1, 1)
        };
        atoms.push((atom, lo, hi));
    }
    atoms
}

/// Generate one string matching `pattern`.
pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for (atom, lo, hi) in parse(pattern) {
        let count = rng.gen_range(lo..=hi);
        for _ in 0..count {
            match &atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Class(set) => {
                    assert!(!set.is_empty(), "empty class in pattern {pattern}");
                    out.push(set[rng.gen_range(0..set.len())]);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn class_range_and_quantifier() {
        let mut rng = TestRng::deterministic("class_range");
        for _ in 0..100 {
            let s = generate_from_pattern("[a-z]{1,8}", &mut rng);
            assert!((1..=8).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn printable_class() {
        let mut rng = TestRng::deterministic("printable");
        for _ in 0..100 {
            let s = generate_from_pattern("\\PC{0,8}", &mut rng);
            assert!(s.chars().count() <= 8);
            assert!(s.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn space_to_tilde_class() {
        let mut rng = TestRng::deterministic("ascii");
        for _ in 0..100 {
            let s = generate_from_pattern("[ -~]{0,12}", &mut rng);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn exact_quantifier_and_literal() {
        let mut rng = TestRng::deterministic("exact");
        let s = generate_from_pattern("[a-z]{2}", &mut rng);
        assert_eq!(s.chars().count(), 2);
        assert_eq!(generate_from_pattern("abc", &mut rng), "abc");
    }
}
