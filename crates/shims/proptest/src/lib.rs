//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this workspace vendors a
//! minimal property-testing harness that is source-compatible with the
//! subset of `proptest 1.x` the test suites use:
//!
//! - [`strategy::Strategy`] with `prop_map`, integer-range and tuple
//!   strategies, [`strategy::Just`], [`strategy::any`], and regex-subset
//!   string strategies (`"[a-z]{1,8}"`-style patterns).
//! - [`collection::vec`] with exact or ranged sizes.
//! - The [`proptest!`], [`prop_oneof!`], [`prop_assert!`],
//!   [`prop_assert_eq!`], and [`prop_assert_ne!`] macros.
//!
//! Differences from upstream: inputs are generated from a deterministic
//! per-test seed (derived from the test name), there is **no shrinking**,
//! and failure reports print the raw case values via the assertion message.

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_cases {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __outcome: ::std::result::Result<(), ::std::string::String> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(__e) = __outcome {
                    ::std::panic!(
                        "proptest: case {}/{} of `{}` failed:\n{}",
                        __case + 1,
                        __config.cases,
                        stringify!($name),
                        __e
                    );
                }
            }
        }
        $crate::__proptest_cases!{ ($cfg) $($rest)* }
    };
}

/// Choose uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Assert a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "prop_assert failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "prop_assert failed: {}: {}", stringify!($cond), ::std::format!($($fmt)+)
            ));
        }
    };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__va, __vb) = (&$a, &$b);
        if !(__va == __vb) {
            return ::std::result::Result::Err(::std::format!(
                "prop_assert_eq failed:\n  left: {:?}\n right: {:?}", __va, __vb
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__va, __vb) = (&$a, &$b);
        if !(__va == __vb) {
            return ::std::result::Result::Err(::std::format!(
                "prop_assert_eq failed:\n  left: {:?}\n right: {:?}\n  note: {}",
                __va, __vb, ::std::format!($($fmt)+)
            ));
        }
    }};
}

/// Assert inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__va, __vb) = (&$a, &$b);
        if __va == __vb {
            return ::std::result::Result::Err(::std::format!(
                "prop_assert_ne failed: both sides = {:?}",
                __va
            ));
        }
    }};
}
