//! Test-run configuration and the deterministic RNG behind case generation.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases generated per property.
    pub cases: u32,
    /// Accepted for source compatibility; this shim never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 1024,
        }
    }
}

/// Deterministic generator seeded from the property's name, so failures
/// reproduce across runs without a persistence file.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// RNG seeded by FNV-1a over `name`.
    pub fn deterministic(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(hash))
    }
}

impl RngCore for TestRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}
