//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this workspace vendors a
//! minimal, API-compatible subset of `rand 0.8`: [`rngs::StdRng`] (here an
//! xoshiro256** generator), [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] methods the generators use (`gen`, `gen_bool`, `gen_range` over
//! integer ranges). Determinism per seed is all the workspace relies on; the
//! exact stream differs from upstream `rand`.

use std::ops::{Range, RangeInclusive};

/// Core entropy source.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types samplable by [`Rng::gen`] (the upstream `Standard` distribution).
pub trait Standard: Sized {
    /// Sample a value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Sample uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi - lo) as u128;
                (lo + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let lo = *self.start() as i128;
                let hi = *self.end() as i128;
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u128 + 1;
                (lo + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing random value generation.
pub trait Rng: RngCore {
    /// Sample a value from the standard distribution of `T`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }

    /// Uniform sample from an integer range.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic seeding.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The standard generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let va: Vec<u64> = (0..10).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..10).map(|_| b.gen::<u64>()).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(va[0], c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.gen_range(3..10);
            assert!((3..10).contains(&x));
            let y: i64 = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
