//! Wire-path panic audit: malformed or truncated response bodies must
//! surface as typed [`FrameError`]s through the whole client stack — the
//! decoders return `None`, the converters return `Err`, and
//! [`Executor::run`] reports a transport error. Nothing on this path may
//! panic on attacker-shaped bytes.

use std::sync::Arc;
use std::sync::Mutex;

use rdf_model::{Dataset, Graph, Term, Triple};
use rdfframes_core::client::{wire, xml, Endpoint};
use rdfframes_core::exec::Executor;
use rdfframes_core::{FrameError, Result};
use sparql_engine::SolutionTable;

/// An endpoint that serves pre-baked response *bodies*: each request pops
/// the next body and decodes it exactly like a real client would, turning
/// decode failures into transport errors. This is how corrupted bytes enter
/// `Executor::run` in production — after the HTTP layer, before conversion.
struct RawBodyEndpoint {
    bodies: Mutex<Vec<(Body, &'static str)>>,
    page: usize,
}

enum Body {
    Xml,
    Tsv,
}

impl Endpoint for RawBodyEndpoint {
    fn query_chunk(&self, _sparql: &str, _offset: usize, _limit: usize) -> Result<SolutionTable> {
        let (format, body) = self
            .bodies
            .lock()
            .unwrap()
            .pop()
            .expect("test script exhausted");
        let decoded = match format {
            Body::Xml => xml::decode(body),
            Body::Tsv => wire::decode(body),
        };
        decoded.ok_or_else(|| FrameError::Transport("response body failed to decode".into()))
    }

    fn max_rows_per_request(&self) -> usize {
        self.page
    }
}

/// Corrupted response bodies: truncations, tag soup, mismatched structure.
fn corrupt_bodies() -> Vec<&'static str> {
    vec![
        "",
        "<?xml version=\"1.0\"?>",
        "<sparql><head>",
        "<sparql><head></head><results><result>",
        "<head></head><results><result><binding name=\"s\"><uri>http://x</uri>",
        "<head><variable name=\"s\"/></head><results><result>\
         <binding name=\"s\"><uri>http://x</binding></result></results>",
        "<head><variable name=\"s\"/></head><results><result>\
         <binding name=\"UNDECLARED\"><uri>http://x</uri></binding></result></results>",
        "<head><variable name=\"s\"/></head><results>\
         <result><binding name=\"s\"><literal datatype=\"oops>x</literal></binding></result></results>",
        // TSV with a term that is not N-Triples syntax.
        "?s\nnot-a-term\n",
        // TSV with an unterminated literal.
        "?s\n\"unterminated\n",
        // TSV with a dangling escape at end of input.
        "?s\n\"abc\\\n",
        // Ragged TSV row (two fields under a one-column header).
        "?s\n<http://x/a>\t<http://x/b>\n",
    ]
}

#[test]
fn decoders_reject_corrupt_bodies_without_panicking() {
    for body in corrupt_bodies() {
        // Either decoder may be handed any bytes; both must return a value.
        let _ = xml::decode(body);
        let _ = wire::decode(body);
    }
    // Spot-check the ones that *must* be rejected outright.
    assert!(xml::decode("<sparql><head>").is_none());
    assert!(wire::decode("?s\n\"unterminated\n").is_none());
    assert!(wire::decode("?s\n<http://x/a>\t<http://x/b>\n").is_none());
}

#[test]
fn corrupted_first_chunk_is_a_typed_error_through_run() {
    for body in corrupt_bodies() {
        // Skip bodies that legitimately decode (e.g. "" is not valid XML
        // but IS an empty TSV header) — this test targets the reject path.
        if xml::decode(body).is_some() {
            continue;
        }
        let ep = RawBodyEndpoint {
            bodies: Mutex::new(vec![(Body::Xml, body)]),
            page: 10,
        };
        let err = Executor::new().run("SELECT ?s WHERE { ?s ?p ?o }", &ep);
        assert!(
            matches!(err, Err(FrameError::Transport(_))),
            "body {body:?} gave {err:?}"
        );
    }
}

#[test]
fn corrupted_mid_pagination_chunk_is_a_typed_error_through_run() {
    // Chunk 0 decodes fine and fills the page (so pagination continues);
    // chunk 1 arrives truncated. The run must fail typed, not panic.
    let good: &str = "?s\n<http://x/a>\n<http://x/b>\n";
    let bad: &str = "?s\n\"unterminated\n";
    // Bodies pop from the back: push in reverse order.
    let ep = RawBodyEndpoint {
        bodies: Mutex::new(vec![(Body::Tsv, bad), (Body::Tsv, good)]),
        page: 2,
    };
    let err = Executor::new().run("SELECT ?s WHERE { ?s ?p ?o }", &ep);
    assert!(matches!(err, Err(FrameError::Transport(_))), "{err:?}");
}

#[test]
fn schema_drift_between_chunks_is_a_typed_error_through_run() {
    // Chunk 0 establishes {s}; chunk 1 decodes fine but answers {z}.
    let good: &str = "?s\n<http://x/a>\n<http://x/b>\n";
    let drifted: &str = "?z\n<http://x/c>\n";
    let ep = RawBodyEndpoint {
        bodies: Mutex::new(vec![(Body::Tsv, drifted), (Body::Tsv, good)]),
        page: 2,
    };
    let err = Executor::new().run("SELECT ?s WHERE { ?s ?p ?o }", &ep);
    match err {
        Err(FrameError::Transport(m)) => {
            assert!(m.contains("inconsistent schemas"), "{m}")
        }
        other => panic!("expected schema-drift transport error, got {other:?}"),
    }
}

#[test]
fn wire_endpoint_with_xml_roundtrip_never_panics_on_any_query_shape() {
    // End-to-end sanity over the real InProcessEndpoint with the XML wire
    // format: unusual-but-legal terms (quotes, angle brackets, newlines,
    // unicode, empty strings) survive the round trip — the characters most
    // likely to break a hand-rolled encoder.
    let mut g = Graph::new();
    let weird = [
        "plain",
        "with \"quotes\" inside",
        "tabs\tand\nnewlines",
        "ampersand & <angle> brackets",
        "ünïcödé ≠ ascii",
        "",
    ];
    for (i, w) in weird.iter().enumerate() {
        g.insert(&Triple::new(
            Term::iri(format!("http://x/s{i}")),
            Term::iri("http://x/p"),
            Term::string(*w),
        ));
    }
    let mut ds = Dataset::new();
    ds.insert_graph("http://g", g);
    let ep = rdfframes_core::InProcessEndpoint::new(Arc::new(ds));
    let df = Executor::new()
        .run(
            "SELECT ?s ?o FROM <http://g> WHERE { ?s <http://x/p> ?o } ORDER BY ?s",
            &ep,
        )
        .unwrap();
    assert_eq!(df.len(), weird.len());
}
