//! Chaos tests: fault-injected pagination, retry parity, partial results,
//! and budget propagation through both execution paths.
//!
//! The central property: any fault plan whose per-chunk fault runs are
//! shorter than the retry budget is **invisible** — the retried wire result
//! is cell-identical to the fault-free run. Past the budget, the client
//! gets a typed error, and [`Executor::run_partial`] keeps the intact
//! prefix.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use rdf_model::{Dataset, Graph, Term, Triple};
use rdfframes_core::api::KnowledgeGraph;
use rdfframes_core::client::{
    EmbeddedEndpoint, Endpoint, EndpointConfig, Fault, FaultyEndpoint, InProcessEndpoint,
};
use rdfframes_core::exec::{Completeness, Executor, RetryPolicy};
use rdfframes_core::FrameError;
use sparql_engine::{EvalMode, QueryBudget};

fn dataset(n: usize) -> Arc<Dataset> {
    let mut g = Graph::new();
    for i in 0..n {
        g.insert(&Triple::new(
            Term::iri(format!("http://x/movie{i}")),
            Term::iri("http://x/starring"),
            Term::iri(format!("http://x/actor{}", i % 5)),
        ));
    }
    let mut ds = Dataset::new();
    ds.insert_graph("http://g", g);
    Arc::new(ds)
}

fn endpoint(n: usize, max_rows: usize) -> InProcessEndpoint {
    InProcessEndpoint::with_config(
        dataset(n),
        EndpointConfig {
            max_rows_per_request: max_rows,
            ..Default::default()
        },
    )
}

const QUERY: &str = "SELECT ?m ?a FROM <http://g> WHERE { ?m <http://x/starring> ?a } ORDER BY ?m";

/// A retryable fault to inject, drawn per request slot.
fn fault_strategy() -> impl Strategy<Value = Option<Fault>> {
    prop_oneof![
        Just(None),
        Just(None), // bias toward clean requests
        Just(Some(Fault::Transient)),
        Just(Some(Fault::TruncatedChunk)),
        Just(Some(Fault::SchemaDrift)),
    ]
}

/// Faults for the FIRST chunk: schema drift is excluded because with no
/// accumulated header yet it is undetectable by construction (the drifted
/// header would silently become the frame's schema) — the protocol's
/// inherent blind spot, not a retry-logic gap.
fn first_chunk_fault_strategy() -> impl Strategy<Value = Option<Fault>> {
    prop_oneof![
        Just(None),
        Just(Some(Fault::Transient)),
        Just(Some(Fault::TruncatedChunk)),
    ]
}

/// Expand a per-chunk fault plan into a per-request script: each chunk slot
/// optionally fails `runs` times before succeeding, so the script stays
/// under a retry budget of `runs + 1` attempts.
fn script_from_runs(runs: &[(Option<Fault>, u8)]) -> Vec<Option<Fault>> {
    let mut script = Vec::new();
    for (fault, times) in runs {
        if let Some(f) = fault {
            for _ in 0..*times {
                script.push(Some(*f));
            }
        }
        script.push(None); // the attempt that succeeds
    }
    script
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Faults under the retry limit are invisible: cell-identical frames.
    #[test]
    fn retried_wire_result_is_cell_identical_to_fault_free_run(
        first in (first_chunk_fault_strategy(), 1u8..3),
        rest in proptest::collection::vec((fault_strategy(), 1u8..3), 0..9),
    ) {
        let clean = endpoint(25, 7);
        let expected = Executor::new().run(QUERY, &clean).unwrap();

        let mut runs = vec![first];
        runs.extend(rest);
        let max_faults = runs.iter().map(|(_, t)| *t as u32).max().unwrap_or(0);
        let faulty = FaultyEndpoint::scripted(endpoint(25, 7), script_from_runs(&runs));
        let exec = Executor::new().with_retry(RetryPolicy::fast(max_faults + 1));
        let df = exec.run(QUERY, &faulty).unwrap();
        prop_assert_eq!(df, expected);
    }

    /// Seeded chaos at a rate the retry budget absorbs with near certainty:
    /// if the run succeeds it must be cell-identical; if a fault burst
    /// exceeds the budget the error must be the typed transport fault, and
    /// a replay with the same seed behaves identically.
    #[test]
    fn seeded_chaos_is_deterministic_and_never_corrupts(seed in 0u64..1000) {
        let clean = endpoint(25, 5);
        let expected = Executor::new().run(QUERY, &clean).unwrap();
        let run = || {
            let faulty = FaultyEndpoint::seeded(endpoint(25, 5), seed, 0.3);
            Executor::new()
                .with_retry(RetryPolicy::fast(4))
                .run(QUERY, &faulty)
        };
        match (run(), run()) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(&a, &expected);
                prop_assert_eq!(&a, &b);
            }
            (Err(a), Err(b)) => {
                prop_assert!(a.is_retryable(), "burst past budget must be transport-typed: {a:?}");
                prop_assert_eq!(a, b);
            }
            (a, b) => prop_assert!(false, "same seed diverged: {a:?} vs {b:?}"),
        }
    }

    /// rows_scanned parity: the wire path (re-evaluating per chunk) and the
    /// embedded path agree per request on the engine's work metric.
    #[test]
    fn rows_scanned_parity_wire_vs_embedded(n in 5usize..40) {
        let ds = dataset(n);
        let wire = InProcessEndpoint::with_config(Arc::clone(&ds), EndpointConfig {
            // One chunk covers everything: a single evaluation each side.
            max_rows_per_request: 10_000,
            ..Default::default()
        });
        let embedded = EmbeddedEndpoint::new(ds);
        let frame = KnowledgeGraph::new("http://g")
            .with_prefix("x", "http://x/")
            .feature_domain_range("x:starring", "movie", "actor");
        let via_wire = frame.execute(&wire).unwrap();
        let via_embedded = frame.execute(&embedded).unwrap();
        prop_assert_eq!(via_wire, via_embedded);
        prop_assert!(embedded.rows_scanned() > 0);
        // The embedded cursor reports the same scan work the wire engine
        // does for the rendered text of the same model.
        let (_, stats) = wire.engine().execute_with_stats(&frame.to_sparql()).unwrap();
        prop_assert_eq!(embedded.rows_scanned(), stats.rows_scanned);
    }
}

#[test]
fn fault_past_retry_budget_surfaces_typed_error() {
    // Three transient faults on the same chunk, two attempts: the executor
    // gives up with the transport error, not a panic or silent truncation.
    let faulty = FaultyEndpoint::scripted(
        endpoint(25, 7),
        vec![
            Some(Fault::Transient),
            Some(Fault::Transient),
            Some(Fault::Transient),
        ],
    );
    let exec = Executor::new().with_retry(RetryPolicy::fast(2));
    let err = exec.run(QUERY, &faulty).unwrap_err();
    assert!(matches!(err, FrameError::Transport(_)), "{err:?}");
    assert_eq!(faulty.faults_injected(), 2, "gave up after max_attempts");
}

#[test]
fn fatal_fault_is_not_retried() {
    let faulty = FaultyEndpoint::scripted(endpoint(25, 7), vec![Some(Fault::Fatal)]);
    let exec = Executor::new().with_retry(RetryPolicy::fast(5));
    let err = exec.run(QUERY, &faulty).unwrap_err();
    assert!(matches!(err, FrameError::Endpoint(_)), "{err:?}");
    assert_eq!(faulty.faults_injected(), 1);
    // Exactly one request reached the decorator: no retry burned on a
    // deterministic failure.
    assert_eq!(faulty.inner().stats().requests(), 0);
}

#[test]
fn run_partial_keeps_intact_prefix_with_completeness_marker() {
    // 25 rows in pages of 7: chunk 0 ok, chunk 1 ok, then an unrecoverable
    // fault on chunk 2 → the partial frame holds exactly the first 14 rows.
    let script = vec![None, None, Some(Fault::Transient), Some(Fault::Transient)];
    let faulty = FaultyEndpoint::scripted(endpoint(25, 7), script);
    let exec = Executor::new().with_retry(RetryPolicy::fast(2));
    let partial = exec.run_partial(QUERY, &faulty).unwrap();
    assert_eq!(partial.frame.len(), 14);
    match &partial.completeness {
        Completeness::Partial { error } => {
            assert!(matches!(error, FrameError::Transport(_)), "{error:?}")
        }
        Completeness::Complete => panic!("must be partial"),
    }
    assert!(!partial.completeness.is_complete());

    // Fault-free pagination reports Complete with all rows.
    let clean = endpoint(25, 7);
    let complete = Executor::new().run_partial(QUERY, &clean).unwrap();
    assert_eq!(complete.frame.len(), 25);
    assert!(complete.completeness.is_complete());
}

#[test]
fn run_partial_with_no_assembled_rows_is_an_error() {
    // The very first chunk fails unrecoverably: there is no prefix to
    // keep, so the failure is a plain error.
    let faulty = FaultyEndpoint::scripted(endpoint(25, 7), vec![Some(Fault::Fatal)]);
    assert!(Executor::new().run_partial(QUERY, &faulty).is_err());
}

#[test]
fn budget_trips_propagate_through_wire_path_on_every_evaluator() {
    let cross = "SELECT ?a ?b ?c ?d FROM <http://g> WHERE { \
                 ?a <http://x/starring> ?b . ?c <http://x/starring> ?d }";
    for eval_mode in [
        EvalMode::Columnar,
        EvalMode::IdNative,
        EvalMode::TermReference,
    ] {
        let ep = InProcessEndpoint::with_config(
            dataset(4000),
            EndpointConfig {
                eval_mode,
                budget: QueryBudget::unlimited().with_max_intermediate_rows(50_000),
                ..Default::default()
            },
        );
        let err = Executor::new().run(cross, &ep).unwrap_err();
        assert!(
            matches!(err, FrameError::ResourceExhausted(_)),
            "{eval_mode:?}: {err:?}"
        );
        // Budget exhaustion is deterministic — the policy must not retry it.
        assert!(!err.is_retryable());
        // The failed request was still accounted, on both counters.
        assert_eq!(ep.stats().requests(), 1);
        assert_eq!(ep.stats().errors(), 1);
    }
}

#[test]
fn budget_trips_propagate_through_embedded_path() {
    use sparql_engine::EngineConfig;
    let ep = EmbeddedEndpoint::with_engine_config(
        dataset(4000),
        EngineConfig {
            budget: QueryBudget::unlimited().with_max_intermediate_rows(50_000),
            ..EngineConfig::new()
        },
    );
    // Drive the budget through the raw-SPARQL chunk surface — the same
    // engine and the same meter the model path uses.
    let cross = "SELECT ?a ?b ?c ?d FROM <http://g> WHERE { \
                 ?a <http://x/starring> ?b . ?c <http://x/starring> ?d }";
    let err = ep.query_chunk(cross, 0, 1_000_000).unwrap_err();
    assert!(matches!(err, FrameError::ResourceExhausted(_)), "{err:?}");
    assert_eq!(ep.stats().errors(), 1);

    // And a deadline of zero also cancels the embedded model path itself
    // (cursor creation) on a large enough evaluation.
    let ep = EmbeddedEndpoint::with_engine_config(
        dataset(4000),
        EngineConfig {
            budget: QueryBudget::unlimited().with_deadline(Duration::ZERO),
            ..EngineConfig::new()
        },
    );
    let err = ep.query_chunk(cross, 0, 1_000_000).unwrap_err();
    assert!(matches!(err, FrameError::ResourceExhausted(_)), "{err:?}");
}

#[test]
fn slow_fault_delays_but_does_not_corrupt() {
    let clean = endpoint(25, 7);
    let expected = Executor::new().run(QUERY, &clean).unwrap();
    let faulty = FaultyEndpoint::scripted(
        endpoint(25, 7),
        vec![Some(Fault::Slow(Duration::from_millis(5)))],
    );
    let df = Executor::new().run(QUERY, &faulty).unwrap();
    assert_eq!(df, expected);
}

#[test]
fn error_counter_stays_at_zero_on_clean_runs() {
    let ep = endpoint(25, 7);
    Executor::new().run(QUERY, &ep).unwrap();
    assert!(ep.stats().requests() >= 4);
    assert_eq!(ep.stats().errors(), 0);
}
