//! Restart semantics: a dataset recovered from durable storage must be a
//! perfect stand-in for the one that was live before the restart — same
//! query results, same scan work, same `stats_generation` — so prepared
//! plans stamped before a restart stay exactly as valid (or invalid) as
//! they would have been without one.

use std::sync::Arc;

use rdf_model::persist::{MemVfs, Store};
use rdf_model::{Graph, Term, Triple};
use rdfframes_core::{EmbeddedEndpoint, Endpoint, Executor, InProcessEndpoint, KnowledgeGraph};

fn movie_triple(i: usize) -> Triple {
    Triple::new(
        Term::iri(format!("http://x/movie{i}")),
        Term::iri("http://x/starring"),
        Term::iri(format!("http://x/actor{}", i % 7)),
    )
}

/// Build a store with a mixed insert+append history (no checkpoint unless
/// the test says so), returning it with its backing VFS.
fn seeded_store() -> (Arc<MemVfs>, Store) {
    let vfs = Arc::new(MemVfs::new());
    let mut store = Store::open(Arc::clone(&vfs) as Arc<dyn rdf_model::persist::Vfs>).unwrap();
    let mut g = Graph::with_delta_threshold(8);
    for i in 0..30 {
        g.insert(&movie_triple(i));
    }
    store.insert_graph("http://g", &g).unwrap();
    store
        .append_triples("http://g", (30..45).map(movie_triple).collect())
        .unwrap();
    (vfs, store)
}

fn frame() -> rdfframes_core::RDFFrame {
    KnowledgeGraph::new("http://g")
        .with_prefix("x", "http://x/")
        .feature_domain_range("x:starring", "movie", "actor")
}

#[test]
fn recovered_dataset_serves_identical_results_and_scan_work() {
    let (vfs, mut store) = seeded_store();
    store.checkpoint().unwrap();

    let reopened = Store::open(Arc::new(MemVfs::reopen_from(&vfs))).unwrap();
    assert_eq!(
        reopened.dataset().stats_generation(),
        store.dataset().stats_generation(),
        "restart must preserve the generation counter"
    );

    // Embedded path: frames and rows_scanned both identical.
    let exec = Executor::new();
    let before = EmbeddedEndpoint::new(store.shared_dataset());
    let after = EmbeddedEndpoint::new(reopened.shared_dataset());
    let df_before = exec
        .execute(
            &frame().group_by(&["actor"]).count("movie", "n", true),
            &before,
        )
        .unwrap();
    let df_after = exec
        .execute(
            &frame().group_by(&["actor"]).count("movie", "n", true),
            &after,
        )
        .unwrap();
    assert_eq!(df_before, df_after);
    assert_eq!(before.rows_scanned(), after.rows_scanned());

    // Wire path: raw SPARQL chunks identical too.
    let q = "SELECT ?m ?a FROM <http://g> WHERE { ?m <http://x/starring> ?a }";
    let ep_before = InProcessEndpoint::new(store.shared_dataset());
    let ep_after = InProcessEndpoint::new(reopened.shared_dataset());
    assert_eq!(
        exec.run(q, &ep_before).unwrap(),
        exec.run(q, &ep_after).unwrap()
    );
}

#[test]
fn wal_only_restart_matches_checkpointed_restart() {
    // The same history recovered two ways — pure WAL replay vs snapshot —
    // must land on the same dataset.
    let (wal_vfs, wal_store) = seeded_store();
    drop(wal_store);
    let (snap_vfs, mut snap_store) = seeded_store();
    snap_store.checkpoint().unwrap();
    drop(snap_store);

    let from_wal = Store::open(Arc::new(MemVfs::reopen_from(&wal_vfs))).unwrap();
    let from_snap = Store::open(Arc::new(MemVfs::reopen_from(&snap_vfs))).unwrap();
    assert!(from_wal.recovery().replayed > 0);
    assert!(from_snap.recovery().snapshot_loaded);
    assert_eq!(
        from_wal.dataset().stats_generation(),
        from_snap.dataset().stats_generation()
    );
    let ga = from_wal.dataset().graph("http://g").unwrap();
    let gb = from_snap.dataset().graph("http://g").unwrap();
    assert_eq!(ga.spo_slab(), gb.spo_slab());
    assert_eq!(
        ga.delta_ids().collect::<Vec<_>>(),
        gb.delta_ids().collect::<Vec<_>>()
    );
}

#[test]
fn plan_cache_stays_valid_across_restart_at_equal_generation() {
    let (vfs, mut store) = seeded_store();
    store.checkpoint().unwrap();
    let q = "SELECT ?m ?a FROM <http://g> WHERE { ?m <http://x/starring> ?a }";

    // A long-lived endpoint process with a warm plan cache...
    let mut ep = InProcessEndpoint::new(store.shared_dataset());
    ep.query_chunk(q, 0, 100).unwrap();
    let warm = ep.cached_plan(q).expect("plan cached");

    // ...whose dataset is swapped for the recovered one ("the storage node
    // restarted underneath the query layer"). Same generation ⇒ the warm
    // plan must be re-served, not re-prepared.
    let reopened = Store::open(Arc::new(MemVfs::reopen_from(&vfs))).unwrap();
    *ep.engine_mut().dataset_mut().expect("sole reference") = reopened.dataset().clone();
    ep.query_chunk(q, 0, 100).unwrap();
    let served = ep.cached_plan(q).expect("plan still cached");
    assert!(
        Arc::ptr_eq(&warm, &served),
        "equal generations must re-serve the cached plan"
    );
    assert_eq!(ep.cached_plans(), 1);
}

#[test]
fn plan_cache_reoptimizes_after_post_restart_appends_invert_selectivities() {
    use sparql_engine::algebra::Plan;

    let common = |i: usize| Term::iri(format!("http://x/c{i}"));
    let rare = |i: usize| Term::iri(format!("http://x/r{i}"));
    let p_common = Term::iri("http://x/common");
    let p_rare = Term::iri("http://x/rare");

    // Skewed graph persisted through the durable store, then recovered:
    // the optimizer statistics the recovered dataset yields must drive the
    // same plan the live one would have.
    let vfs = Arc::new(MemVfs::new());
    let mut store = Store::open(Arc::clone(&vfs) as Arc<dyn rdf_model::persist::Vfs>).unwrap();
    let mut g = Graph::with_delta_threshold(4);
    for i in 0..40 {
        g.insert(&Triple::new(
            common(i),
            p_common.clone(),
            Term::integer(i as i64),
        ));
    }
    for i in 0..2 {
        g.insert(&Triple::new(
            rare(i),
            p_rare.clone(),
            Term::integer(i as i64),
        ));
    }
    store.insert_graph("http://g", &g).unwrap();
    store.checkpoint().unwrap();
    drop(store);

    let recovered = Store::open(Arc::new(MemVfs::reopen_from(&vfs))).unwrap();
    let mut ep = InProcessEndpoint::new(recovered.shared_dataset());
    let q = "SELECT ?s ?a ?b FROM <http://g> WHERE { \
             ?s <http://x/common> ?a . ?s <http://x/rare> ?b }";
    let first_predicate = |prepared: &sparql_engine::PreparedQuery| -> Term {
        let mut plan = prepared.plan();
        loop {
            match plan {
                Plan::Bgp { patterns, .. } => {
                    let sparql_engine::ast::PatternTerm::Const(t) = &patterns[0].predicate else {
                        panic!("constant predicate expected")
                    };
                    return t.clone();
                }
                Plan::Project(_, p) => plan = p.as_ref(),
                other => panic!("unexpected plan shape: {other:?}"),
            }
        }
    };

    // Plan cached on recovered statistics: <rare> is selective → first.
    ep.query_chunk(q, 0, 100).unwrap();
    let stale = ep.cached_plan(q).expect("plan cached");
    assert_eq!(first_predicate(&stale), p_rare);

    // Post-restart appends invert the skew.
    let appended: Vec<Triple> = (100..400)
        .map(|i| Triple::new(rare(i), p_rare.clone(), Term::integer(i as i64)))
        .collect();
    ep.engine_mut()
        .dataset_mut()
        .expect("sole reference")
        .append_triples("http://g", appended)
        .unwrap();

    // The generation moved: the cache must re-optimize, not re-serve.
    ep.query_chunk(q, 0, 100).unwrap();
    let fresh = ep.cached_plan(q).expect("plan re-cached");
    assert!(!Arc::ptr_eq(&stale, &fresh), "stale plan must be replaced");
    assert_eq!(first_predicate(&fresh), p_common);
}

#[test]
fn durable_server_restart_recovers_committed_epoch_and_revalidates_plans() {
    use rdfframes_core::{DurableSnapshotServer, ServingConfig};

    // A durable server with a mixed insert+append history, still serving.
    let vfs = Arc::new(MemVfs::new());
    let server = DurableSnapshotServer::open(
        Arc::clone(&vfs) as Arc<dyn rdf_model::persist::Vfs>,
        ServingConfig::default(),
    )
    .unwrap();
    let mut g = Graph::with_delta_threshold(8);
    for i in 0..30 {
        g.insert(&movie_triple(i));
    }
    server.insert_graph("http://g", &g).unwrap();
    server
        .append_triples("http://g", (30..45).map(movie_triple).collect())
        .unwrap();

    let f = frame();
    let model = rdfframes_core::model::generator::build_query_model(&f).unwrap();
    let before = server.execute(&f).unwrap();
    let retained = server.snapshot();
    let warm = retained
        .embedded()
        .cached_model_plan(&model)
        .expect("execute warmed the model-plan cache");
    let committed_gen = retained.generation();

    // Restart while serving: a new process opens the surviving image while
    // the old process's reader still holds its epoch. Recovery must land
    // on exactly the committed epoch.
    let reopened = DurableSnapshotServer::open(
        Arc::new(MemVfs::reopen_from(&vfs)),
        ServingConfig::default(),
    )
    .unwrap();
    assert_eq!(reopened.recovery().replayed, 2);
    assert_eq!(reopened.snapshot().generation(), committed_gen);
    assert_eq!(reopened.execute(&f).unwrap(), before);
    // The pre-restart reader drains unaffected on its frozen epoch.
    assert_eq!(
        Executor::new().execute(&f, retained.embedded()).unwrap(),
        before
    );

    // Equal generation ⇒ a warm plan cache revalidates against the
    // recovered dataset instead of re-preparing.
    let swapped = retained
        .embedded()
        .with_dataset(Arc::clone(reopened.snapshot().dataset()));
    Executor::new().execute(&f, &swapped).unwrap();
    assert!(
        Arc::ptr_eq(&warm, &swapped.cached_model_plan(&model).unwrap()),
        "restart at equal stats_generation must re-serve the warm plan"
    );

    // A post-restart append moves the generation: the reopened server's
    // cache re-optimizes exactly once, then sticks.
    let plan_recovered = reopened
        .snapshot()
        .embedded()
        .cached_model_plan(&model)
        .unwrap();
    let snap1 = reopened
        .append_triples("http://g", vec![movie_triple(100)])
        .unwrap();
    assert!(snap1.generation() > committed_gen);
    reopened.execute(&f).unwrap();
    let plan_fresh = snap1.embedded().cached_model_plan(&model).unwrap();
    assert!(
        !Arc::ptr_eq(&plan_recovered, &plan_fresh),
        "generation change must re-optimize"
    );
    reopened.execute(&f).unwrap();
    assert!(
        Arc::ptr_eq(
            &plan_fresh,
            &snap1.embedded().cached_model_plan(&model).unwrap()
        ),
        "re-optimized exactly once, then re-served"
    );
}
