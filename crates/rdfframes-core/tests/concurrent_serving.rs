//! Stress test for epoch-snapshot serving: concurrent readers must never
//! observe a torn dataset, no matter how aggressively a writer publishes.
//!
//! The torn-read detector works by construction: every writer update
//! appends **one matched pair** of triples — one to each of two graphs —
//! inside a single epoch publication. A reader counts both graphs through
//! one snapshot handle; if snapshots were ever assembled from mixed epochs
//! (or a query could see a half-applied update), the two counts would
//! disagree. Equality on every read, across thousands of reads racing
//! hundreds of publications, is the invariant.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use rdf_model::{Dataset, Graph, Term, Triple};
use rdfframes_core::{KnowledgeGraph, SnapshotServer};

const GRAPH_A: &str = "http://a";
const GRAPH_B: &str = "http://b";
const SEED_ROWS: usize = 300;

fn pair(graph: &str, i: usize) -> Triple {
    Triple::new(
        Term::iri(format!("{graph}/s{i}")),
        Term::iri("http://x/p"),
        Term::iri(format!("{graph}/o{i}")),
    )
}

fn dataset() -> Arc<Dataset> {
    let mut ds = Dataset::new();
    for uri in [GRAPH_A, GRAPH_B] {
        let mut g = Graph::new();
        for i in 0..SEED_ROWS {
            g.insert(&pair(uri, i));
        }
        ds.insert_graph(uri, g);
    }
    Arc::new(ds)
}

fn scan_frame(graph: &str) -> rdfframes_core::RDFFrame {
    KnowledgeGraph::new(graph).feature_domain_range("<http://x/p>", "s", "o")
}

/// Rows of graph `graph` visible through `snap`, via a real query.
fn visible_rows(snap: &rdfframes_core::EpochEndpoints, graph: &str) -> i64 {
    scan_frame(graph)
        .execute(snap.embedded())
        .expect("scan query failed")
        .len() as i64
}

#[test]
fn readers_never_observe_torn_epochs() {
    let server = Arc::new(SnapshotServer::new(dataset()));
    let stop = AtomicBool::new(false);
    const UPDATES: usize = 200;
    const READERS: usize = 4;

    std::thread::scope(|scope| {
        let mut readers = Vec::new();
        for _ in 0..READERS {
            readers.push(scope.spawn(|| {
                let mut reads = 0u64;
                let mut last_epoch = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let snap = server.snapshot();
                    assert!(
                        snap.epoch() >= last_epoch,
                        "published epochs went backwards"
                    );
                    last_epoch = snap.epoch();
                    let a = visible_rows(&snap, GRAPH_A);
                    let b = visible_rows(&snap, GRAPH_B);
                    // Both graphs grow in lockstep within one epoch; a
                    // mismatch means this snapshot mixed two epochs.
                    assert_eq!(a, b, "torn read at epoch {}", snap.epoch());
                    assert!(a >= SEED_ROWS as i64);
                    reads += 1;
                }
                reads
            }));
        }

        // The writer appends the matched pair and publishes, as fast as it
        // can, UPDATES times.
        for u in 0..UPDATES {
            let published = server
                .update(|ds| {
                    let i = SEED_ROWS + u;
                    assert_eq!(ds.append_triples(GRAPH_A, [pair(GRAPH_A, i)]), Some(1));
                    assert_eq!(ds.append_triples(GRAPH_B, [pair(GRAPH_B, i)]), Some(1));
                })
                .expect("publish failed");
            assert_eq!(published.epoch(), (u + 1) as u64);
        }
        stop.store(true, Ordering::Relaxed);

        let total_reads: u64 = readers
            .into_iter()
            .map(|r| r.join().expect("reader panicked"))
            .sum();
        assert!(total_reads > 0, "readers never ran");
    });

    // All epochs drained: the final snapshot sees every appended pair.
    assert_eq!(server.epochs_published(), UPDATES as u64 + 1);
    let last = server.snapshot();
    assert_eq!(last.epoch(), UPDATES as u64);
    assert_eq!(visible_rows(&last, GRAPH_A), (SEED_ROWS + UPDATES) as i64);
    assert_eq!(visible_rows(&last, GRAPH_B), (SEED_ROWS + UPDATES) as i64);
}

#[test]
fn plan_cache_survives_epochs_and_reoptimizes_per_generation() {
    let server = SnapshotServer::new(dataset());
    let frame = scan_frame(GRAPH_A);
    let model = rdfframes_core::model::generator::build_query_model(&frame).unwrap();

    let snap0 = server.snapshot();
    frame.execute(snap0.embedded()).unwrap();
    let plan_epoch0 = snap0.embedded().cached_model_plan(&model).unwrap();

    // Re-running on the same epoch reuses the exact cached plan object.
    frame.execute(snap0.embedded()).unwrap();
    assert!(Arc::ptr_eq(
        &plan_epoch0,
        &snap0.embedded().cached_model_plan(&model).unwrap()
    ));

    // The published epoch shares the cache but carries a new statistics
    // generation: first use re-optimizes (new plan object), then sticks.
    let snap1 = server
        .update(|ds| {
            ds.append_triples(GRAPH_A, [pair(GRAPH_A, SEED_ROWS)]);
        })
        .unwrap();
    assert!(snap1.generation() > snap0.generation());
    frame.execute(snap1.embedded()).unwrap();
    let plan_epoch1 = snap1.embedded().cached_model_plan(&model).unwrap();
    assert!(
        !Arc::ptr_eq(&plan_epoch0, &plan_epoch1),
        "stale plan served across a generation change"
    );
    frame.execute(snap1.embedded()).unwrap();
    assert!(Arc::ptr_eq(
        &plan_epoch1,
        &snap1.embedded().cached_model_plan(&model).unwrap()
    ));
}

#[test]
fn old_snapshots_serve_unchanged_while_new_ones_advance() {
    let server = SnapshotServer::new(dataset());
    let old = server.snapshot();
    let before = visible_rows(&old, GRAPH_A);
    for u in 0..10 {
        server
            .update(|ds| {
                let i = SEED_ROWS + u;
                ds.append_triples(GRAPH_A, [pair(GRAPH_A, i)]);
            })
            .unwrap();
        // The retained handle is frozen at its epoch's contents.
        assert_eq!(visible_rows(&old, GRAPH_A), before);
    }
    assert_eq!(visible_rows(&server.snapshot(), GRAPH_A), before + 10);
}
