//! Golden tests: the SPARQL shapes RDFFrames generates for the paper's
//! listings and for every operator of Table 1.

use rdfframes_core::api::{Direction, JoinType, KnowledgeGraph};

fn graph() -> KnowledgeGraph {
    KnowledgeGraph::new("http://dbpedia.org")
        .with_prefix("dbpp", "http://dbpedia.org/property/")
        .with_prefix("dbpo", "http://dbpedia.org/ontology/")
        .with_prefix("dbpr", "http://dbpedia.org/resource/")
}

/// Normalize whitespace for shape comparisons.
fn squash(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}

// ---- Table 1: operator → pattern mappings ------------------------------

#[test]
fn table1_seed_projects_pattern_vars() {
    let q = graph()
        .seed("?movie", "dbpp:starring", "?actor")
        .to_sparql();
    assert!(q.contains("?movie dbpp:starring ?actor ."), "{q}");
    assert!(q.contains("SELECT *"), "{q}");
}

#[test]
fn table1_expand_out_joins_triple() {
    let q = graph()
        .seed("?movie", "dbpp:starring", "?actor")
        .expand_dir("actor", "dbpp:birthPlace", "country", Direction::Out, false)
        .to_sparql();
    assert!(q.contains("?actor dbpp:birthPlace ?country ."), "{q}");
    assert!(!q.contains("OPTIONAL"), "{q}");
}

#[test]
fn table1_expand_in_flips_subject_object() {
    let q = graph()
        .seed("?actor", "dbpp:birthPlace", "?c")
        .expand_dir("actor", "dbpp:starring", "movie", Direction::In, false)
        .to_sparql();
    assert!(q.contains("?movie dbpp:starring ?actor ."), "{q}");
}

#[test]
fn table1_expand_optional_left_joins() {
    let q = graph()
        .seed("?movie", "dbpp:starring", "?actor")
        .expand_dir("actor", "dbpp:academyAward", "award", Direction::Out, true)
        .to_sparql();
    let sq = squash(&q);
    assert!(
        sq.contains("OPTIONAL { ?actor dbpp:academyAward ?award . }"),
        "{q}"
    );
}

#[test]
fn table1_filter_renders_conditions() {
    let q = graph()
        .seed("?movie", "dbpp:starring", "?actor")
        .filter("actor", &["isURI"])
        .to_sparql();
    assert!(q.contains("FILTER ( isIRI(?actor) )"), "{q}");
}

#[test]
fn table1_select_cols_projects() {
    let q = graph()
        .seed("?movie", "dbpp:starring", "?actor")
        .select_cols(&["movie"])
        .to_sparql();
    assert!(q.contains("SELECT ?movie\n"), "{q}");
}

#[test]
fn table1_inner_join_merges_patterns() {
    let g = graph();
    let a = g.seed("?movie", "dbpp:starring", "?actor");
    let b = g.seed("?actor", "dbpp:birthPlace", "?c");
    let q = a.join(&b, "actor", JoinType::Inner).to_sparql();
    // Flat merge: both triples at the same level, no subquery.
    assert!(q.contains("?movie dbpp:starring ?actor ."), "{q}");
    assert!(q.contains("?actor dbpp:birthPlace ?c ."), "{q}");
    assert!(
        !q.contains("SELECT *\n    WHERE"),
        "no nesting expected:\n{q}"
    );
}

#[test]
fn table1_left_join_wraps_right_in_optional() {
    let g = graph();
    let a = g.seed("?movie", "dbpp:starring", "?actor");
    let b = g.seed("?actor", "dbpp:academyAward", "?aw");
    let q = a.join(&b, "actor", JoinType::Left).to_sparql();
    let sq = squash(&q);
    assert!(
        sq.contains("OPTIONAL { ?actor dbpp:academyAward ?aw . }"),
        "{q}"
    );
}

#[test]
fn table1_right_join_swaps_operands() {
    let g = graph();
    let a = g.seed("?movie", "dbpp:starring", "?actor");
    let b = g.seed("?actor", "dbpp:academyAward", "?aw");
    let q = a.join(&b, "actor", JoinType::Right).to_sparql();
    let sq = squash(&q);
    // The left operand's pattern lands in the OPTIONAL block.
    assert!(
        sq.contains("OPTIONAL { ?movie dbpp:starring ?actor . }"),
        "{q}"
    );
}

#[test]
fn table1_full_outer_join_is_union_of_two_leftjoins() {
    let g = graph();
    let a = g.seed("?movie", "dbpp:starring", "?actor");
    let b = g.seed("?actor", "dbpp:academyAward", "?aw");
    let q = a.join(&b, "actor", JoinType::Outer).to_sparql();
    assert_eq!(q.matches("UNION").count(), 1, "{q}");
    assert_eq!(q.matches("OPTIONAL").count(), 2, "{q}");
}

#[test]
fn table1_groupby_aggregation_projects_keys_and_aggregate() {
    let q = graph()
        .seed("?movie", "dbpp:starring", "?actor")
        .group_by(&["actor"])
        .count("movie", "n", true)
        .to_sparql();
    assert!(
        q.contains("SELECT DISTINCT ?actor (COUNT(DISTINCT ?movie) AS ?n)"),
        "{q}"
    );
    assert!(q.contains("GROUP BY ?actor"), "{q}");
}

#[test]
fn table1_whole_frame_aggregate() {
    let q = graph()
        .seed("?movie", "dbpp:starring", "?actor")
        .aggregate(rdfframes_core::AggFunc::Count, "movie", "total")
        .to_sparql();
    assert!(q.contains("(COUNT(?movie) AS ?total)"), "{q}");
    assert!(!q.contains("GROUP BY"), "{q}");
}

#[test]
fn sort_and_head_render_modifiers() {
    let q = graph()
        .seed("?movie", "dbpp:starring", "?actor")
        .sort(&[
            ("actor", rdfframes_core::SortOrder::Asc),
            ("movie", rdfframes_core::SortOrder::Desc),
        ])
        .head_offset(10, 5)
        .to_sparql();
    assert!(q.contains("ORDER BY ASC(?actor) DESC(?movie)"), "{q}");
    assert!(q.contains("LIMIT 10"), "{q}");
    assert!(q.contains("OFFSET 5"), "{q}");
}

// ---- Listing-level golden shapes ----------------------------------------

#[test]
fn listing2_shape_single_nested_subquery() {
    // The motivating example compiles to exactly the expert query's shape:
    // one grouped subquery, one OPTIONAL, everything else flat.
    let movies = graph().feature_domain_range("dbpp:starring", "movie", "actor");
    let q = movies
        .clone()
        .expand("actor", "dbpp:birthPlace", "country")
        .filter("country", &["=dbpr:United_States"])
        .group_by(&["actor"])
        .count("movie", "movie_count", true)
        .filter("movie_count", &[">=50"])
        .expand_dir("actor", "dbpp:starring", "movie", Direction::In, false)
        .expand_dir("actor", "dbpp:academyAward", "award", Direction::Out, true)
        .to_sparql();
    assert_eq!(q.matches("SELECT").count(), 2, "exactly one subquery:\n{q}");
    assert_eq!(q.matches("OPTIONAL").count(), 1, "{q}");
    assert!(q.contains("HAVING ( COUNT(DISTINCT ?movie) >= 50 )"), "{q}");
    assert!(
        q.contains("FILTER ( ?country = dbpr:United_States )"),
        "{q}"
    );
}

#[test]
fn naive_translation_wraps_every_pattern() {
    let q = graph()
        .feature_domain_range("dbpp:starring", "movie", "actor")
        .expand("actor", "dbpp:birthPlace", "country")
        .filter("country", &["=dbpr:United_States"])
        .to_naive_sparql();
    // Three subqueries: seed, expand, filter-with-repeated-pattern.
    assert_eq!(q.matches("SELECT").count(), 4, "{q}");
}

#[test]
fn generated_queries_declare_used_prefixes() {
    let q = graph()
        .seed("?movie", "dbpp:starring", "?actor")
        .filter("actor", &["=dbpr:X"])
        .to_sparql();
    assert!(
        q.contains("PREFIX dbpp: <http://dbpedia.org/property/>"),
        "{q}"
    );
    assert!(
        q.contains("PREFIX dbpr: <http://dbpedia.org/resource/>"),
        "{q}"
    );
}

#[test]
fn from_clause_names_the_graph() {
    let q = graph().seed("?s", "?p", "?o").to_sparql();
    assert!(q.contains("FROM <http://dbpedia.org>"), "{q}");
}

#[test]
fn cross_graph_join_uses_graph_blocks_not_from() {
    let yago = KnowledgeGraph::new("http://yago-knowledge.org");
    let a = graph().seed("?actor", "dbpp:birthPlace", "dbpr:United_States");
    let b = yago.seed("?actor", "rdf:type", "<http://yago/Actor>");
    let q = a.join(&b, "actor", JoinType::Inner).to_sparql();
    assert!(!q.contains("FROM"), "{q}");
    assert!(q.contains("GRAPH <http://dbpedia.org>"), "{q}");
    assert!(q.contains("GRAPH <http://yago-knowledge.org>"), "{q}");
}
