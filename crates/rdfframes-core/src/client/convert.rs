//! Conversion between engine results and dataframes.
//!
//! Two converters live here:
//!
//! - the row converters ([`table_to_dataframe`], [`append_table`]) over
//!   term-materialized [`SolutionTable`]s — the wire path;
//! - the columnar converter ([`cursor_to_dataframe`]) over a
//!   [`QueryCursor`]'s `TermId` batches — the embedded path. Each *distinct*
//!   id is decoded to a [`Cell`] exactly once ([`CellInterner`]); repeated
//!   IRI/string values share one `Arc<str>` allocation across the whole
//!   frame, and numeric literals parse to `i64`/`f64` once instead of per
//!   cell.

use std::collections::HashMap;

use dataframe::{Cell, DataFrame};
use rdf_model::term::TypedValue;
use rdf_model::{Term, TermId};
use sparql_engine::{QueryCursor, SolutionTable};

use crate::client::engine_error;
use crate::error::{FrameError, Result};

/// Convert one RDF term to a dataframe cell, preserving URI-ness and
/// numeric/boolean typing.
pub fn term_to_cell(term: &Term) -> Cell {
    match term {
        Term::Iri(i) => Cell::uri(i.clone()),
        Term::Blank(b) => Cell::uri(format!("_:{b}")),
        Term::Literal(l) => match l.parsed {
            TypedValue::Integer(i) => Cell::Int(i),
            TypedValue::Double(d) => Cell::Float(d),
            TypedValue::Boolean(b) => Cell::Bool(b),
            _ => Cell::str(l.lexical.clone()),
        },
    }
}

/// Convert a whole solution table.
///
/// Fallible because the table may have been decoded from a wire chunk a
/// fault corrupted: a ragged row (width ≠ header) is reported as a
/// [`FrameError::Transport`] instead of tripping the dataframe's width
/// assertion — the wire path must never panic on malformed input.
pub fn table_to_dataframe(table: &SolutionTable) -> Result<DataFrame> {
    let width = table.vars.len();
    let mut df = DataFrame::new(table.vars.clone());
    for row in &table.rows {
        if row.len() != width {
            return Err(ragged_row(row.len(), width));
        }
        df.push_row(
            row.iter()
                .map(|c| c.as_ref().map_or(Cell::Null, term_to_cell))
                .collect(),
        );
    }
    Ok(df)
}

fn ragged_row(got: usize, want: usize) -> FrameError {
    FrameError::Transport(format!(
        "malformed result chunk: row width {got} does not match header width {want}"
    ))
}

/// Memoized id → cell decoding for the embedded path.
///
/// A query result usually binds the same term many times (entities repeat
/// across rows); decoding per *distinct* [`TermId`] turns the per-cell cost
/// into an `Arc` clone (URIs/strings) or a copy (numbers/booleans).
#[derive(Debug, Default)]
pub struct CellInterner {
    memo: HashMap<TermId, Cell>,
}

impl CellInterner {
    /// Fresh interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// The cell for `id`, decoding `term` on first sight only.
    pub fn cell(&mut self, id: TermId, term: &Term) -> Cell {
        self.memo
            .entry(id)
            .or_insert_with(|| term_to_cell(term))
            .clone()
    }
}

/// Drain a [`QueryCursor`] into a dataframe, building typed cell columns
/// straight from the cursor's id columns (no intermediate
/// [`SolutionTable`], no per-cell term materialization).
pub fn cursor_to_dataframe(cursor: &mut QueryCursor<'_>) -> Result<DataFrame> {
    let vars = cursor.vars().to_vec();
    let width = vars.len();
    if width == 0 {
        // Zero-column results (every pattern position constant) still carry
        // a row count — e.g. one empty row for "the triple exists" — which
        // column transposition cannot represent. Drain the cursor and count
        // (batches are how a streaming cursor reports rows at all).
        let mut df = DataFrame::new(vars);
        while let Some(batch) = cursor.next_batch().map_err(engine_error)? {
            for _ in 0..batch.len {
                df.push_row(Vec::new());
            }
        }
        return Ok(df);
    }
    let mut cols: Vec<Vec<Cell>> = (0..width).map(|_| Vec::new()).collect();
    let mut interner = CellInterner::new();
    while let Some(batch) = cursor.next_batch().map_err(engine_error)? {
        for (c, col) in cols.iter_mut().enumerate() {
            let ids = batch.column_ids(c);
            for (i, &id) in ids.iter().enumerate() {
                col.push(if batch.is_present(c, i) {
                    interner.cell(id, batch.resolve(id))
                } else {
                    Cell::Null
                });
            }
        }
    }
    Ok(DataFrame::from_cell_columns(vars, cols))
}

/// Append a solution table's rows to an existing dataframe with the same
/// schema (used by pagination).
///
/// A chunk whose header differs from the accumulated frame's (schema
/// drift) or whose rows are ragged is a [`FrameError::Transport`]: a
/// damaged response, worth re-requesting — re-execution per chunk makes the
/// retry safe.
pub fn append_table(df: &mut DataFrame, table: &SolutionTable) -> Result<()> {
    if df.columns() != table.vars.as_slice() {
        return Err(FrameError::Transport(
            "endpoint returned inconsistent schemas across chunks".into(),
        ));
    }
    let width = table.vars.len();
    // Validate every row before appending any: a retry after a mid-chunk
    // error must not find half the bad chunk already merged.
    if let Some(row) = table.rows.iter().find(|r| r.len() != width) {
        return Err(ragged_row(row.len(), width));
    }
    for row in &table.rows {
        df.push_row(
            row.iter()
                .map(|c| c.as_ref().map_or(Cell::Null, term_to_cell))
                .collect(),
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf_model::Literal;

    #[test]
    fn term_conversions() {
        assert_eq!(
            term_to_cell(&Term::iri("http://x/a")),
            Cell::uri("http://x/a")
        );
        assert_eq!(term_to_cell(&Term::integer(5)), Cell::Int(5));
        assert_eq!(
            term_to_cell(&Term::Literal(Literal::double(2.5))),
            Cell::Float(2.5)
        );
        assert_eq!(
            term_to_cell(&Term::Literal(Literal::boolean(true))),
            Cell::Bool(true)
        );
        assert_eq!(term_to_cell(&Term::string("hi")), Cell::str("hi"));
        assert_eq!(term_to_cell(&Term::blank("b0")), Cell::uri("_:b0"));
        // Date-times keep their lexical form as strings.
        assert_eq!(
            term_to_cell(&Term::Literal(Literal::date_time("2020-01-01T00:00:00"))),
            Cell::str("2020-01-01T00:00:00")
        );
    }

    #[test]
    fn table_conversion_preserves_nulls() {
        let table = SolutionTable {
            vars: vec!["a".into(), "b".into()],
            rows: vec![vec![Some(Term::integer(1)), None]],
        };
        let df = table_to_dataframe(&table).unwrap();
        assert_eq!(df.get(0, "a"), Some(&Cell::Int(1)));
        assert_eq!(df.get(0, "b"), Some(&Cell::Null));
    }

    #[test]
    fn append_checks_schema() {
        let t1 = SolutionTable {
            vars: vec!["a".into()],
            rows: vec![vec![Some(Term::integer(1))]],
        };
        let mut df = table_to_dataframe(&t1).unwrap();
        assert!(append_table(&mut df, &t1).is_ok());
        assert_eq!(df.len(), 2);
        let t2 = SolutionTable {
            vars: vec!["z".into()],
            rows: vec![],
        };
        assert!(matches!(
            append_table(&mut df, &t2),
            Err(FrameError::Transport(_))
        ));
    }

    #[test]
    fn ragged_rows_error_instead_of_panicking() {
        // A truncated wire chunk can decode to a row narrower than the
        // header; conversion must reject it as a transport error, not trip
        // the dataframe's width assertion.
        let ragged = SolutionTable {
            vars: vec!["a".into(), "b".into()],
            rows: vec![
                vec![Some(Term::integer(1)), Some(Term::integer(2))],
                vec![Some(Term::integer(3))],
            ],
        };
        assert!(matches!(
            table_to_dataframe(&ragged),
            Err(FrameError::Transport(_))
        ));
        let ok = SolutionTable {
            vars: vec!["a".into(), "b".into()],
            rows: vec![vec![Some(Term::integer(1)), Some(Term::integer(2))]],
        };
        let mut df = table_to_dataframe(&ok).unwrap();
        assert!(matches!(
            append_table(&mut df, &ragged),
            Err(FrameError::Transport(_))
        ));
        // Nothing from the bad chunk was merged — a retry starts clean.
        assert_eq!(df.len(), 1);
    }
}
