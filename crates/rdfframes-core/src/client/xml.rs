//! SPARQL Query Results XML Format encoding.
//!
//! The paper's client stack (SPARQLWrapper over HTTP) receives results in
//! this format by default, so the simulated endpoint can optionally perform
//! a *real* XML encode/parse round trip per chunk. This makes transfer cost
//! proportional to shipped data volume — the effect that dominates the
//! paper's client-side baselines.

use rdf_model::term::Literal;
use rdf_model::Term;
use sparql_engine::SolutionTable;

fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            other => out.push(other),
        }
    }
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(idx) = rest.find('&') {
        out.push_str(&rest[..idx]);
        let tail = &rest[idx..];
        let (entity, len) = if tail.starts_with("&amp;") {
            ('&', 5)
        } else if tail.starts_with("&lt;") {
            ('<', 4)
        } else if tail.starts_with("&gt;") {
            ('>', 4)
        } else if tail.starts_with("&quot;") {
            ('"', 6)
        } else {
            ('&', 1)
        };
        out.push(entity);
        rest = &tail[len..];
    }
    out.push_str(rest);
    out
}

/// Encode a solution table in the SPARQL XML Results Format.
pub fn encode(table: &SolutionTable) -> String {
    let mut out = String::with_capacity(table.rows.len() * 96 + 256);
    out.push_str("<?xml version=\"1.0\"?>\n<sparql xmlns=\"http://www.w3.org/2005/sparql-results#\">\n<head>");
    for v in &table.vars {
        out.push_str("<variable name=\"");
        escape_into(v, &mut out);
        out.push_str("\"/>");
    }
    out.push_str("</head>\n<results>\n");
    for row in &table.rows {
        out.push_str("<result>");
        for (v, cell) in table.vars.iter().zip(row) {
            let Some(term) = cell else { continue };
            out.push_str("<binding name=\"");
            escape_into(v, &mut out);
            out.push_str("\">");
            match term {
                Term::Iri(iri) => {
                    out.push_str("<uri>");
                    escape_into(iri, &mut out);
                    out.push_str("</uri>");
                }
                Term::Blank(b) => {
                    out.push_str("<bnode>");
                    escape_into(b, &mut out);
                    out.push_str("</bnode>");
                }
                Term::Literal(l) => {
                    if let Some(lang) = &l.language {
                        out.push_str("<literal xml:lang=\"");
                        escape_into(lang, &mut out);
                        out.push_str("\">");
                    } else if let Some(dt) = &l.datatype {
                        out.push_str("<literal datatype=\"");
                        escape_into(dt, &mut out);
                        out.push_str("\">");
                    } else {
                        out.push_str("<literal>");
                    }
                    escape_into(&l.lexical, &mut out);
                    out.push_str("</literal>");
                }
            }
            out.push_str("</binding>");
        }
        out.push_str("</result>\n");
    }
    out.push_str("</results>\n</sparql>\n");
    out
}

/// Parse a SPARQL XML results document back into a solution table.
pub fn decode(text: &str) -> Option<SolutionTable> {
    // Header.
    let head_start = text.find("<head>")? + "<head>".len();
    let head_end = head_start + text[head_start..].find("</head>")?;
    let head = &text[head_start..head_end];
    let mut vars = Vec::new();
    let mut rest = head;
    while let Some(at) = rest.find("<variable name=\"") {
        let after = &rest[at + "<variable name=\"".len()..];
        let q = after.find('"')?;
        vars.push(unescape(&after[..q]));
        rest = &after[q..];
    }

    // Results block, sliced once.
    let results_start = head_end + text[head_end..].find("<results>")? + "<results>".len();
    let results_end = results_start + text[results_start..].find("</results>")?;
    let mut body = &text[results_start..results_end];

    let mut table = SolutionTable::with_vars(vars);
    let width = table.vars.len();
    while let Some(at) = body.find("<result>") {
        let after = &body[at + "<result>".len()..];
        let close = after.find("</result>")?;
        let result = &after[..close];
        body = &after[close + "</result>".len()..];

        let mut row: Vec<Option<Term>> = vec![None; width];
        let mut cursor = result;
        while let Some(b) = cursor.find("<binding name=\"") {
            let after = &cursor[b + "<binding name=\"".len()..];
            let q = after.find('"')?;
            let name = unescape(&after[..q]);
            let after = &after[q..];
            let gt = after.find('>')?;
            let content_and_rest = &after[gt + 1..];
            let bind_end = content_and_rest.find("</binding>")?;
            let content = &content_and_rest[..bind_end];
            cursor = &content_and_rest[bind_end + "</binding>".len()..];

            let term = decode_binding(content)?;
            let idx = table.vars.iter().position(|v| *v == name)?;
            row[idx] = Some(term);
        }
        table.rows.push(row);
    }
    Some(table)
}

fn decode_binding(content: &str) -> Option<Term> {
    if let Some(rest) = content.strip_prefix("<uri>") {
        let inner = rest.strip_suffix("</uri>")?;
        return Some(Term::iri(unescape(inner)));
    }
    if let Some(rest) = content.strip_prefix("<bnode>") {
        let inner = rest.strip_suffix("</bnode>")?;
        return Some(Term::blank(unescape(inner)));
    }
    if let Some(rest) = content.strip_prefix("<literal") {
        let gt = rest.find('>')?;
        let attrs = &rest[..gt];
        let body = rest[gt + 1..].strip_suffix("</literal>")?;
        let body = unescape(body);
        return if let Some(lang) = attr_value(attrs, "xml:lang") {
            Some(Term::Literal(Literal::lang_string(body, unescape(&lang))))
        } else if let Some(dt) = attr_value(attrs, "datatype") {
            Some(Term::Literal(Literal::typed(body, unescape(&dt))))
        } else {
            Some(Term::string(body))
        };
    }
    None
}

fn attr_value(attrs: &str, name: &str) -> Option<String> {
    let marker = format!("{name}=\"");
    let start = attrs.find(&marker)? + marker.len();
    let end = attrs[start..].find('"')? + start;
    Some(attrs[start..end].to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SolutionTable {
        SolutionTable {
            vars: vec!["s".into(), "label".into(), "n".into()],
            rows: vec![
                vec![
                    Some(Term::iri("http://x/a?q=1&r=2")),
                    Some(Term::Literal(Literal::lang_string("héllo <world>", "en"))),
                    Some(Term::integer(5)),
                ],
                vec![Some(Term::blank("b0")), None, None],
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let t = sample();
        let decoded = decode(&encode(&t)).expect("decodes");
        assert_eq!(t, decoded);
    }

    #[test]
    fn empty_results() {
        let t = SolutionTable::with_vars(vec!["x".into()]);
        assert_eq!(decode(&encode(&t)).unwrap(), t);
    }

    #[test]
    fn escaping() {
        let mut t = SolutionTable::with_vars(vec!["v".into()]);
        t.rows.push(vec![Some(Term::string("a & b < c > d \" e"))]);
        assert_eq!(decode(&encode(&t)).unwrap(), t);
    }

    #[test]
    fn malformed_rejected() {
        assert!(decode("<sparql><head></head>").is_none());
        assert!(decode("").is_none());
    }
}
