//! Endpoint abstraction and the in-process engine client.
//!
//! The paper's RDFFrames talks to Virtuoso through SPARQL-over-HTTP, where
//! the server caps each response at a configured number of rows and the
//! client must paginate. [`Endpoint`] models exactly that contract:
//! `query_chunk(sparql, offset, limit)` returns at most `limit` rows
//! starting at `offset`, *re-executing the query per request* like a
//! cursor-less HTTP endpoint does. [`InProcessEndpoint`] implements it over
//! the [`sparql_engine`] crate (our Virtuoso stand-in), optionally charging
//! a simulated per-request overhead.

pub mod concurrent;
pub mod convert;
pub mod embedded;
pub mod faulty;
pub mod serving;
pub mod wire;
pub mod xml;

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use dataframe::DataFrame;
use rdf_model::Dataset;
use sparql_engine::{
    Engine, EngineConfig, EngineError, EvalMode, PreparedQuery, QueryBudget, SolutionTable,
};

use crate::error::{FrameError, Result};
use crate::model::QueryModel;

pub use concurrent::{EpochEndpoints, SnapshotServer};
pub use embedded::EmbeddedEndpoint;
pub use faulty::{Fault, FaultyEndpoint};
pub use serving::{
    AdmissionGovernor, AdmissionPermit, DurableSnapshotServer, QueryClass, ServerStats,
    ServingConfig,
};

/// Map an engine-side failure onto the client error taxonomy: budget trips
/// keep their typed identity (fatal, not worth retrying, but distinguishable
/// from a rejected query), everything else is an endpoint rejection.
pub(crate) fn engine_error(e: EngineError) -> FrameError {
    match e {
        EngineError::ResourceExhausted { .. } => {
            // The engine's Display already leads with "resource exhausted:",
            // as does FrameError's — keep only the axis/limit detail.
            let msg = e.to_string();
            let detail = msg.strip_prefix("resource exhausted: ").unwrap_or(&msg);
            FrameError::ResourceExhausted(detail.to_string())
        }
        other => FrameError::Endpoint(other.to_string()),
    }
}

/// Server-side configuration of the simulated endpoint.
#[derive(Debug, Clone)]
pub struct EndpointConfig {
    /// Maximum rows returned per request (Virtuoso's `ResultSetMaxRows`).
    pub max_rows_per_request: usize,
    /// Simulated per-request overhead (HTTP + serialization). Zero by
    /// default so unit tests are instant; benchmarks set a realistic value.
    pub request_overhead: Duration,
    /// Enable the engine's query optimizer.
    pub optimize: bool,
    /// Which engine evaluator serves requests (columnar unless testing
    /// against an oracle).
    pub eval_mode: EvalMode,
    /// Result-format round trip performed on every chunk (models the
    /// SPARQL-over-HTTP result encoding the paper's setup pays for).
    pub wire: WireFormat,
    /// Server-side resource limits enforced during evaluation (Virtuoso's
    /// query timeout / result cap family). Unlimited by default; violations
    /// come back as [`FrameError::ResourceExhausted`].
    pub budget: QueryBudget,
}

/// Result serialization performed by the simulated endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFormat {
    /// No serialization (pure in-process; fastest, least faithful).
    None,
    /// Tab-separated values (SPARQL TSV results).
    Tsv,
    /// SPARQL Query Results XML Format — what SPARQLWrapper, the client
    /// library the paper uses, receives by default.
    Xml,
}

impl Default for EndpointConfig {
    fn default() -> Self {
        EndpointConfig {
            max_rows_per_request: 100_000,
            request_overhead: Duration::ZERO,
            optimize: true,
            eval_mode: EvalMode::default(),
            wire: WireFormat::Xml,
            budget: QueryBudget::unlimited(),
        }
    }
}

/// Cumulative endpoint-side statistics (for the experiments).
#[derive(Debug, Default)]
pub struct EndpointStats {
    /// Requests served (successful or not — a failed request still consumed
    /// a server round trip).
    pub requests: AtomicU64,
    /// Total rows shipped to clients.
    pub rows_returned: AtomicU64,
    /// Requests that ended in an error (rejection, budget trip, or wire
    /// encoding failure). Always ≤ `requests`.
    pub errors: AtomicU64,
    /// Parallel work chunks executed by the engine on behalf of this
    /// endpoint (sum of [`sparql_engine::ExecStats::par_chunks`] across
    /// served requests). Zero when the engine runs single-threaded.
    pub par_chunks: AtomicU64,
    /// Cursor batches the embedded path streamed into dataframes (sum of
    /// [`sparql_engine::ExecStats::batches_emitted`] across requests).
    /// Zero on wire-only endpoints.
    pub batches_emitted: AtomicU64,
    /// High-water mark of rows simultaneously live in any one embedded
    /// execution's pipeline (max of
    /// [`sparql_engine::ExecStats::peak_live_rows`] across requests):
    /// O(batch size + breaker state) under streaming, O(result) when
    /// `streaming` is off.
    pub peak_live_rows: AtomicU64,
}

impl EndpointStats {
    /// Requests served so far.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Rows shipped so far.
    pub fn rows_returned(&self) -> u64 {
        self.rows_returned.load(Ordering::Relaxed)
    }

    /// Requests that ended in an error so far.
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Parallel work chunks executed so far on behalf of this endpoint.
    pub fn par_chunks(&self) -> u64 {
        self.par_chunks.load(Ordering::Relaxed)
    }

    /// Cursor batches streamed so far by embedded executions.
    pub fn batches_emitted(&self) -> u64 {
        self.batches_emitted.load(Ordering::Relaxed)
    }

    /// Peak rows simultaneously live in any one embedded execution.
    pub fn peak_live_rows(&self) -> u64 {
        self.peak_live_rows.load(Ordering::Relaxed)
    }
}

/// Anything that can answer SPARQL queries in pages.
pub trait Endpoint {
    /// Execute `sparql`, returning rows `[offset, offset+limit)` of the
    /// result. Implementations re-execute per call (no server cursors over
    /// HTTP, as the paper discusses in Section 4.3).
    fn query_chunk(&self, sparql: &str, offset: usize, limit: usize) -> Result<SolutionTable>;

    /// The server's page-size cap.
    fn max_rows_per_request(&self) -> usize;

    /// Embedded fast path: execute a query model directly, bypassing SPARQL
    /// rendering, result pagination, and wire decoding. `None` (the
    /// default) means "this endpoint only speaks SPARQL text" and the
    /// [`Executor`](crate::exec::Executor) falls back to the wire path;
    /// [`EmbeddedEndpoint`] overrides it.
    fn execute_model(&self, _model: &QueryModel) -> Option<Result<DataFrame>> {
        None
    }
}

/// Cached prepared plans by query text, shared across endpoint clones.
///
/// The wire contract forces re-*evaluation* per chunk (a cursor-less HTTP
/// server cannot resume), but nothing about HTTP forces re-*planning*: a
/// real server caches compiled plans keyed by query text, so the simulated
/// one does too. Bounded so a workload of many distinct queries cannot grow
/// it without limit.
///
/// Every entry is stamped with the [`Dataset::stats_generation`] observed
/// when it was prepared. Query text alone is *not* a valid cache key: a
/// plan optimized before [`Dataset::append_triples`] bakes in a
/// statistics-driven BGP order that appended data can invert, and a
/// text-keyed cache would re-serve that stale order forever. A generation
/// mismatch re-optimizes against the current statistics and replaces the
/// entry.
#[derive(Default)]
struct PlanCache {
    plans: Mutex<HashMap<String, CachedPlan>>,
}

/// One cached plan plus the dataset fingerprint it was optimized under.
struct CachedPlan {
    stats_generation: u64,
    prepared: Arc<PreparedQuery>,
}

/// Entries kept in the plan cache before it is cleared wholesale (pagination
/// workloads reuse a handful of texts; precision eviction isn't worth it).
const PLAN_CACHE_CAP: usize = 256;

impl PlanCache {
    fn get_or_prepare(&self, engine: &Engine, sparql: &str) -> Result<Arc<PreparedQuery>> {
        let generation = engine.dataset().stats_generation();
        let mut plans = self.plans.lock().expect("plan cache poisoned");
        if let Some(entry) = plans.get(sparql) {
            if entry.stats_generation == generation {
                return Ok(Arc::clone(&entry.prepared));
            }
            // Stale: the dataset's statistics-relevant state moved since
            // this plan was optimized. Fall through and re-prepare.
        }
        let prepared = Arc::new(
            engine
                .prepare(sparql)
                .map_err(|e| FrameError::Endpoint(e.to_string()))?,
        );
        if plans.len() >= PLAN_CACHE_CAP {
            plans.clear();
        }
        plans.insert(
            sparql.to_string(),
            CachedPlan {
                stats_generation: generation,
                prepared: Arc::clone(&prepared),
            },
        );
        Ok(prepared)
    }

    /// The cached plan for a query text, if any (observability for tests).
    fn get(&self, sparql: &str) -> Option<Arc<PreparedQuery>> {
        self.plans
            .lock()
            .expect("plan cache poisoned")
            .get(sparql)
            .map(|e| Arc::clone(&e.prepared))
    }
}

/// An endpoint backed by the in-process SPARQL engine.
#[derive(Clone)]
pub struct InProcessEndpoint {
    engine: Engine,
    config: EndpointConfig,
    stats: Arc<EndpointStats>,
    plans: Arc<PlanCache>,
}

impl InProcessEndpoint {
    /// Endpoint over a dataset with default configuration.
    pub fn new(dataset: Arc<Dataset>) -> Self {
        Self::with_config(dataset, EndpointConfig::default())
    }

    /// Endpoint with explicit configuration.
    pub fn with_config(dataset: Arc<Dataset>, config: EndpointConfig) -> Self {
        let engine = Engine::with_config(
            dataset,
            EngineConfig {
                optimize: config.optimize,
                eval_mode: config.eval_mode,
                budget: config.budget.clone(),
                ..EngineConfig::new()
            },
        );
        InProcessEndpoint {
            engine,
            config,
            stats: Arc::new(EndpointStats::default()),
            plans: Arc::new(PlanCache::default()),
        }
    }

    /// The underlying engine (e.g. for baselines that bypass RDFFrames).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// A new endpoint over `dataset` that keeps this endpoint's
    /// configuration and **shares** its statistics and plan cache
    /// (Arc-cloned). [`SnapshotServer`](crate::client::SnapshotServer) uses
    /// this to publish dataset epochs: cached plans carry the
    /// stats-generation stamp they were optimized under, so queries against
    /// the new snapshot re-optimize exactly when the statistics moved.
    pub fn with_dataset(&self, dataset: Arc<Dataset>) -> Self {
        InProcessEndpoint {
            engine: Engine::with_config(dataset, self.engine.config().clone()),
            config: self.config.clone(),
            stats: Arc::clone(&self.stats),
            plans: Arc::clone(&self.plans),
        }
    }

    /// Mutable engine access — the ingestion path for a live endpoint
    /// (`engine_mut().dataset_mut()` to append triples). Cached plans
    /// notice the resulting [`rdf_model::Dataset::stats_generation`] change
    /// and re-optimize on their next use.
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// Request statistics.
    pub fn stats(&self) -> &EndpointStats {
        &self.stats
    }

    /// Prepared plans currently cached (observability for tests/benches).
    pub fn cached_plans(&self) -> usize {
        self.plans.plans.lock().expect("plan cache poisoned").len()
    }

    /// The cached prepared plan for a query text, if present (observability
    /// for tests/benches — e.g. asserting that a post-append re-preparation
    /// actually changed the plan).
    pub fn cached_plan(&self, sparql: &str) -> Option<Arc<PreparedQuery>> {
        self.plans.get(sparql)
    }
}

impl InProcessEndpoint {
    /// The request body, separated so [`Endpoint::query_chunk`] can account
    /// uniformly: overhead and the request counter are charged before this
    /// runs (a failed request still consumed a round trip), and any error
    /// it returns bumps the error counter exactly once.
    fn serve_chunk(&self, sparql: &str, offset: usize, limit: usize) -> Result<SolutionTable> {
        let limit = limit.min(self.config.max_rows_per_request);
        // Plan once per query text; evaluate per chunk (the HTTP model).
        // Paging inside the engine means only shipped rows materialize terms.
        let prepared = self.plans.get_or_prepare(&self.engine, sparql)?;
        let (mut table, exec_stats) = self
            .engine
            .execute_prepared(&prepared, Some((offset, limit)))
            .map_err(engine_error)?;
        self.stats
            .rows_returned
            .fetch_add(table.rows.len() as u64, Ordering::Relaxed);
        self.stats
            .par_chunks
            .fetch_add(exec_stats.par_chunks, Ordering::Relaxed);
        match self.config.wire {
            WireFormat::None => {}
            WireFormat::Tsv => {
                let encoded = wire::encode(&table);
                table = wire::decode(&encoded)
                    .ok_or_else(|| FrameError::Transport("TSV round trip failed".into()))?;
            }
            WireFormat::Xml => {
                let encoded = xml::encode(&table);
                table = xml::decode(&encoded)
                    .ok_or_else(|| FrameError::Transport("XML round trip failed".into()))?;
            }
        }
        Ok(table)
    }
}

impl Endpoint for InProcessEndpoint {
    fn query_chunk(&self, sparql: &str, offset: usize, limit: usize) -> Result<SolutionTable> {
        if !self.config.request_overhead.is_zero() {
            std::thread::sleep(self.config.request_overhead);
        }
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        let result = self.serve_chunk(sparql, offset, limit);
        if result.is_err() {
            self.stats.errors.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    fn max_rows_per_request(&self) -> usize {
        self.config.max_rows_per_request
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf_model::{Graph, Term, Triple};

    fn dataset() -> Arc<Dataset> {
        let mut g = Graph::new();
        for i in 0..10 {
            g.insert(&Triple::new(
                Term::iri(format!("http://x/s{i}")),
                Term::iri("http://x/p"),
                Term::integer(i),
            ));
        }
        let mut ds = Dataset::new();
        ds.insert_graph("http://g", g);
        Arc::new(ds)
    }

    #[test]
    fn chunked_reads() {
        let ep = InProcessEndpoint::with_config(
            dataset(),
            EndpointConfig {
                max_rows_per_request: 4,
                ..Default::default()
            },
        );
        let q = "SELECT ?s ?o FROM <http://g> WHERE { ?s <http://x/p> ?o } ORDER BY ?o";
        let c1 = ep.query_chunk(q, 0, 4).unwrap();
        let c2 = ep.query_chunk(q, 4, 4).unwrap();
        let c3 = ep.query_chunk(q, 8, 4).unwrap();
        assert_eq!(c1.len(), 4);
        assert_eq!(c2.len(), 4);
        assert_eq!(c3.len(), 2);
        assert_eq!(ep.stats().requests(), 3);
        assert_eq!(ep.stats().rows_returned(), 10);
    }

    #[test]
    fn server_cap_beats_client_limit() {
        let ep = InProcessEndpoint::with_config(
            dataset(),
            EndpointConfig {
                max_rows_per_request: 3,
                ..Default::default()
            },
        );
        let q = "SELECT ?s FROM <http://g> WHERE { ?s <http://x/p> ?o }";
        let c = ep.query_chunk(q, 0, 1000).unwrap();
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn out_of_range_chunks_are_empty_on_wire_and_embedded_paths() {
        // `offset > len` through prepared-plan pagination must agree
        // between the wire endpoint (XML round trip included) and the
        // embedded endpoint: an empty table with the schema intact, no
        // panic, no error — so a paginating client that overshoots the last
        // page terminates cleanly on either path.
        let ds = dataset();
        let wire = InProcessEndpoint::new(Arc::clone(&ds));
        let embedded = crate::client::EmbeddedEndpoint::new(ds);
        let q = "SELECT ?s ?o FROM <http://g> WHERE { ?s <http://x/p> ?o } ORDER BY ?o";
        for offset in [10, 11, 1000, usize::MAX] {
            let via_wire = wire.query_chunk(q, offset, 4).unwrap();
            let via_embedded = embedded.query_chunk(q, offset, 4).unwrap();
            assert!(via_wire.rows.is_empty(), "offset {offset}");
            assert_eq!(via_wire.vars, vec!["s", "o"]);
            assert_eq!(via_wire, via_embedded, "paths disagree at offset {offset}");
        }
        // The page straddling the end is the same partial chunk on both.
        let via_wire = wire.query_chunk(q, 8, usize::MAX).unwrap();
        let via_embedded = embedded.query_chunk(q, 8, usize::MAX).unwrap();
        assert_eq!(via_wire.len(), 2);
        assert_eq!(via_wire, via_embedded);
    }

    #[test]
    fn bad_query_is_endpoint_error() {
        let ep = InProcessEndpoint::new(dataset());
        assert!(matches!(
            ep.query_chunk("NOT SPARQL", 0, 10),
            Err(FrameError::Endpoint(_))
        ));
    }

    #[test]
    fn plan_cache_reoptimizes_after_append_inverts_selectivities() {
        use rdf_model::Triple as T;
        use sparql_engine::algebra::Plan;

        let common = |i: usize| Term::iri(format!("http://x/c{i}"));
        let rare = |i: usize| Term::iri(format!("http://x/r{i}"));
        let p_common = Term::iri("http://x/common");
        let p_rare = Term::iri("http://x/rare");

        // Skewed small graph: <common> has 40 triples, <rare> has 2. A tiny
        // delta threshold keeps the graph auto-merging inside the dataset,
        // so appends refresh statistics without an explicit compact.
        let mut g = Graph::with_delta_threshold(4);
        for i in 0..40 {
            g.insert(&T::new(
                common(i),
                p_common.clone(),
                Term::integer(i as i64),
            ));
        }
        for i in 0..2 {
            g.insert(&T::new(rare(i), p_rare.clone(), Term::integer(i as i64)));
        }
        let mut ds = Dataset::new();
        ds.insert_shared("http://g", Arc::new(g));
        let mut ep = InProcessEndpoint::new(Arc::new(ds));

        let q = "SELECT ?s ?a ?b FROM <http://g> WHERE { \
                 ?s <http://x/common> ?a . ?s <http://x/rare> ?b }";
        let first_predicate = |prepared: &sparql_engine::PreparedQuery| -> Term {
            let mut plan = prepared.plan();
            loop {
                match plan {
                    Plan::Bgp { patterns, .. } => {
                        let sparql_engine::ast::PatternTerm::Const(t) = &patterns[0].predicate
                        else {
                            panic!("constant predicate expected")
                        };
                        return t.clone();
                    }
                    Plan::Project(_, p) => plan = p.as_ref(),
                    other => panic!("unexpected plan shape: {other:?}"),
                }
            }
        };

        // Cache the plan on the skewed graph: <rare> is selective → first.
        ep.query_chunk(q, 0, 100).unwrap();
        let stale = ep.cached_plan(q).expect("plan cached");
        assert_eq!(first_predicate(&stale), p_rare);

        // Append enough <rare> triples (fresh subjects) to invert the
        // selectivities; the threshold-triggered merges refresh stats.
        let appended: Vec<T> = (100..400)
            .map(|i| T::new(rare(i), p_rare.clone(), Term::integer(i as i64)))
            .collect();
        let added = ep
            .engine_mut()
            .dataset_mut()
            .expect("endpoint holds the sole dataset reference")
            .append_triples("http://g", appended)
            .unwrap();
        assert_eq!(added, 300);

        // The next chunk must NOT be served from the stale plan: the cache
        // detects the stats-generation change and re-optimizes.
        ep.query_chunk(q, 0, 100).unwrap();
        assert_eq!(ep.cached_plans(), 1, "entry replaced, not duplicated");
        let fresh = ep.cached_plan(q).expect("plan re-cached");
        assert_eq!(
            first_predicate(&fresh),
            p_common,
            "re-served plan must reorder the BGP for the new statistics"
        );

        // And the re-optimized order scans strictly less than the stale one
        // would on the post-append data.
        let (_, stale_stats) = ep.engine().execute_prepared(&stale, None).unwrap();
        let (_, fresh_stats) = ep.engine().execute_prepared(&fresh, None).unwrap();
        assert!(
            fresh_stats.rows_scanned < stale_stats.rows_scanned,
            "re-optimization must cut scan work: fresh {} vs stale {}",
            fresh_stats.rows_scanned,
            stale_stats.rows_scanned
        );
    }

    #[test]
    fn plan_cache_reuses_prepared_queries_across_chunks() {
        let ep = InProcessEndpoint::with_config(
            dataset(),
            EndpointConfig {
                max_rows_per_request: 4,
                ..Default::default()
            },
        );
        let q = "SELECT ?s ?o FROM <http://g> WHERE { ?s <http://x/p> ?o } ORDER BY ?o";
        assert_eq!(ep.cached_plans(), 0);
        let c1 = ep.query_chunk(q, 0, 4).unwrap();
        assert_eq!(ep.cached_plans(), 1);
        let c2 = ep.query_chunk(q, 4, 4).unwrap();
        let c3 = ep.query_chunk(q, 8, 4).unwrap();
        // Still one cached plan after three chunks of the same text …
        assert_eq!(ep.cached_plans(), 1);
        // … and another text adds a second entry.
        ep.query_chunk(
            "SELECT ?s FROM <http://g> WHERE { ?s <http://x/p> ?o }",
            0,
            4,
        )
        .unwrap();
        assert_eq!(ep.cached_plans(), 2);
        // The cached plan still pages correctly.
        assert_eq!(c1.len() + c2.len() + c3.len(), 10);
        assert_ne!(c1.rows, c2.rows);
    }
}
