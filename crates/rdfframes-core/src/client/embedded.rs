//! The embedded execution endpoint: frame → plan → DataFrame with no
//! string round trip.
//!
//! [`EmbeddedEndpoint`] is the in-process alternative to
//! [`InProcessEndpoint`](crate::client::InProcessEndpoint)'s HTTP-faithful
//! contract. Where the wire path renders the query model to SPARQL text,
//! re-parses and re-evaluates it per page, and round-trips every result
//! chunk through an XML/TSV encoding, the embedded path:
//!
//! 1. compiles the [`QueryModel`] straight into the engine's plan algebra
//!    ([`crate::model::compile`]),
//! 2. runs the shared optimizer pass and evaluates **once**
//!    ([`sparql_engine::Engine::cursor`]),
//! 3. streams the columnar `TermId` result batches into typed dataframe
//!    columns, decoding each distinct term a single time
//!    ([`crate::client::convert::cursor_to_dataframe`]).
//!
//! The [`Executor`](crate::exec::Executor) picks this path automatically
//! through [`Endpoint::execute_model`]; raw-SPARQL callers still get the
//! plain (cached-plan, no-wire-format) [`Endpoint::query_chunk`] contract,
//! so an `EmbeddedEndpoint` is a drop-in `Endpoint` everywhere.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use dataframe::DataFrame;
use rdf_model::Dataset;
use sparql_engine::{Engine, EngineConfig, PreparedQuery, SolutionTable};

use crate::client::convert::cursor_to_dataframe;
use crate::client::{engine_error, Endpoint, EndpointStats, PlanCache, PLAN_CACHE_CAP};
use crate::error::Result;
use crate::model::compile::compile;
use crate::model::{render, QueryModel};

/// Rows per cursor batch handed from the engine to the column builders.
const DEFAULT_BATCH_ROWS: usize = 16_384;

/// The default batch size, overridable through `RDFFRAMES_BATCH_ROWS` (so
/// whole test suites can re-run under a pathological batch size without
/// code changes, mirroring `RDFFRAMES_THREADS`). Explicit
/// [`EmbeddedEndpoint::with_batch_rows`] calls always win over the env.
fn default_batch_rows() -> usize {
    std::env::var("RDFFRAMES_BATCH_ROWS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(DEFAULT_BATCH_ROWS)
        .max(1)
}

/// Prepared plans for *model* executions, keyed by the model's rendered
/// SPARQL text. The rendered string is used purely as an identity key — it
/// is never parsed; the cached plan was built by the direct
/// [`compile`] → [`Engine::prepare_plan`] path. Like
/// [`PlanCache`](crate::client::PlanCache), every entry is stamped with the
/// [`Dataset::stats_generation`] it was optimized under, so plans re-optimize
/// after `append_triples` instead of re-serving a stale join order.
#[derive(Default)]
struct ModelPlanCache {
    plans: Mutex<HashMap<String, (u64, Arc<PreparedQuery>)>>,
}

/// An endpoint that executes query models inside the engine process,
/// columnar end to end.
#[derive(Clone)]
pub struct EmbeddedEndpoint {
    engine: Engine,
    batch_rows: usize,
    stats: Arc<EndpointStats>,
    rows_scanned: Arc<AtomicU64>,
    plans: Arc<PlanCache>,
    model_plans: Arc<ModelPlanCache>,
}

impl EmbeddedEndpoint {
    /// Embedded endpoint over a dataset (optimizer on, columnar engine).
    pub fn new(dataset: Arc<Dataset>) -> Self {
        Self::with_engine_config(dataset, EngineConfig::new())
    }

    /// Embedded endpoint with an explicit engine configuration (the
    /// embedded cursor always evaluates columnar; `eval_mode` only affects
    /// the raw-SPARQL [`Endpoint::query_chunk`] surface).
    pub fn with_engine_config(dataset: Arc<Dataset>, config: EngineConfig) -> Self {
        EmbeddedEndpoint {
            engine: Engine::with_config(dataset, config),
            batch_rows: default_batch_rows(),
            stats: Arc::new(EndpointStats::default()),
            rows_scanned: Arc::new(AtomicU64::new(0)),
            plans: Arc::new(PlanCache::default()),
            model_plans: Arc::new(ModelPlanCache::default()),
        }
    }

    /// Override the cursor batch size (mainly for tests).
    pub fn with_batch_rows(mut self, batch_rows: usize) -> Self {
        self.batch_rows = batch_rows.max(1);
        self
    }

    /// The underlying engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// A new endpoint over `dataset` that keeps this endpoint's engine
    /// configuration and batch size and **shares** its statistics, scan
    /// counter, and both plan caches (Arc-cloned).
    /// [`SnapshotServer`](crate::client::SnapshotServer) uses this to
    /// publish dataset epochs: every cached plan is stamped with the
    /// stats generation it was optimized under, so queries against the new
    /// snapshot re-optimize exactly when the statistics moved and reuse the
    /// plan otherwise.
    pub fn with_dataset(&self, dataset: Arc<Dataset>) -> Self {
        EmbeddedEndpoint {
            engine: Engine::with_config(dataset, self.engine.config().clone()),
            batch_rows: self.batch_rows,
            stats: Arc::clone(&self.stats),
            rows_scanned: Arc::clone(&self.rows_scanned),
            plans: Arc::clone(&self.plans),
            model_plans: Arc::clone(&self.model_plans),
        }
    }

    /// Mutable engine access — the ingestion path for a live endpoint
    /// (`engine_mut().dataset_mut()` to append triples). Cached plans on
    /// both surfaces (raw-SPARQL and model) notice the resulting
    /// [`rdf_model::Dataset::stats_generation`] change and re-optimize on
    /// their next use.
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// Request statistics (each `execute_model` counts as one request).
    pub fn stats(&self) -> &EndpointStats {
        &self.stats
    }

    /// Cumulative index entries scanned by embedded executions (the same
    /// work metric the engine reports for string queries, for
    /// embedded-vs-wire parity checks).
    pub fn rows_scanned(&self) -> u64 {
        self.rows_scanned.load(Ordering::Relaxed)
    }

    /// Compile, optimize, evaluate, and decode a query model.
    pub fn execute_model_direct(&self, model: &QueryModel) -> Result<DataFrame> {
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        let result = self.execute_model_inner(model);
        if result.is_err() {
            self.stats.errors.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    /// The raw-SPARQL request body ([`Endpoint::query_chunk`] charges the
    /// request/error counters around it, mirroring the wire endpoint).
    fn serve_chunk(&self, sparql: &str, offset: usize, limit: usize) -> Result<SolutionTable> {
        let prepared = self.plans.get_or_prepare(&self.engine, sparql)?;
        let (table, stats) = self
            .engine
            .execute_prepared(&prepared, Some((offset, limit)))
            .map_err(engine_error)?;
        self.rows_scanned
            .fetch_add(stats.rows_scanned, Ordering::Relaxed);
        self.stats
            .rows_returned
            .fetch_add(table.rows.len() as u64, Ordering::Relaxed);
        Ok(table)
    }

    fn execute_model_inner(&self, model: &QueryModel) -> Result<DataFrame> {
        let prepared = self.model_plan(model)?;
        let mut cursor = self
            .engine
            .cursor(&prepared, self.batch_rows)
            .map_err(engine_error)?;
        let df = cursor_to_dataframe(&mut cursor)?;
        // Harvest statistics only after the drain: the streaming cursor
        // evaluates (and counts) as batches are pulled.
        let stats = cursor.stats();
        self.rows_scanned
            .fetch_add(stats.rows_scanned, Ordering::Relaxed);
        self.stats
            .par_chunks
            .fetch_add(stats.par_chunks, Ordering::Relaxed);
        self.stats
            .batches_emitted
            .fetch_add(stats.batches_emitted, Ordering::Relaxed);
        self.stats
            .peak_live_rows
            .fetch_max(stats.peak_live_rows, Ordering::Relaxed);
        self.stats
            .rows_returned
            .fetch_add(df.len() as u64, Ordering::Relaxed);
        Ok(df)
    }

    /// The prepared (compiled + optimized) plan for `model`, cached by
    /// rendered query text and re-optimized when the dataset's statistics
    /// generation moves. Repeated executions of the same model — the
    /// benchmark loop, a dashboard refresh — skip compile *and* optimize.
    fn model_plan(&self, model: &QueryModel) -> Result<Arc<PreparedQuery>> {
        let key = render::render(model);
        let generation = self.engine.dataset().stats_generation();
        {
            let plans = self
                .model_plans
                .plans
                .lock()
                .expect("model plan cache poisoned");
            if let Some((stamped, prepared)) = plans.get(&key) {
                if *stamped == generation {
                    return Ok(Arc::clone(prepared));
                }
                // Stale: statistics moved since this plan was optimized.
            }
        }
        // Compile + optimize outside the lock; a concurrent duplicate
        // preparation is harmless (last insert wins, plans are equivalent).
        let compiled = compile(model)?;
        let prepared = Arc::new(self.engine.prepare_plan(compiled.plan, compiled.from));
        let mut plans = self
            .model_plans
            .plans
            .lock()
            .expect("model plan cache poisoned");
        if plans.len() >= PLAN_CACHE_CAP {
            plans.clear();
        }
        plans.insert(key, (generation, Arc::clone(&prepared)));
        Ok(prepared)
    }

    /// Model plans currently cached (observability for tests/benches).
    pub fn cached_model_plans(&self) -> usize {
        self.model_plans
            .plans
            .lock()
            .expect("model plan cache poisoned")
            .len()
    }

    /// The cached prepared plan for a model, if present (observability for
    /// tests — e.g. asserting that an append re-optimized the plan).
    pub fn cached_model_plan(&self, model: &QueryModel) -> Option<Arc<PreparedQuery>> {
        self.model_plans
            .plans
            .lock()
            .expect("model plan cache poisoned")
            .get(&render::render(model))
            .map(|(_, prepared)| Arc::clone(prepared))
    }
}

impl Endpoint for EmbeddedEndpoint {
    /// Raw SPARQL still works (baselines, expert queries): plan once per
    /// query text (cached), evaluate the requested page, no wire-format
    /// round trip.
    fn query_chunk(&self, sparql: &str, offset: usize, limit: usize) -> Result<SolutionTable> {
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        let result = self.serve_chunk(sparql, offset, limit);
        if result.is_err() {
            self.stats.errors.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    /// No server-side page cap: the whole point is that results never cross
    /// a row-limited wire.
    fn max_rows_per_request(&self) -> usize {
        usize::MAX
    }

    fn execute_model(&self, model: &QueryModel) -> Option<Result<DataFrame>> {
        Some(self.execute_model_direct(model))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf_model::{Graph, Term, Triple};

    fn dataset() -> Arc<Dataset> {
        let mut g = Graph::new();
        for i in 0..25 {
            g.insert(&Triple::new(
                Term::iri(format!("http://x/movie{i}")),
                Term::iri("http://x/starring"),
                Term::iri(format!("http://x/actor{}", i % 5)),
            ));
        }
        let mut ds = Dataset::new();
        ds.insert_graph("http://g", g);
        Arc::new(ds)
    }

    fn frame() -> crate::api::RDFFrame {
        crate::api::KnowledgeGraph::new("http://g")
            .with_prefix("x", "http://x/")
            .feature_domain_range("x:starring", "movie", "actor")
    }

    #[test]
    fn embedded_execute_matches_wire() {
        let ds = dataset();
        let embedded = EmbeddedEndpoint::new(Arc::clone(&ds)).with_batch_rows(7);
        let wire = crate::client::InProcessEndpoint::new(ds);
        let f = frame();
        let via_embedded = f.execute(&embedded).unwrap();
        let via_wire = f.execute(&wire).unwrap();
        assert_eq!(via_embedded, via_wire);
        // One embedded request, no pagination.
        assert_eq!(embedded.stats().requests(), 1);
        assert_eq!(embedded.stats().rows_returned(), 25);
        assert!(embedded.rows_scanned() > 0);
    }

    #[test]
    fn embedded_grouped_query() {
        let embedded = EmbeddedEndpoint::new(dataset());
        let df = frame()
            .group_by(&["actor"])
            .count("movie", "n", true)
            .execute(&embedded)
            .unwrap();
        assert_eq!(df.len(), 5);
        for row in df.rows() {
            assert_eq!(row[1], dataframe::Cell::Int(5));
        }
    }

    #[test]
    fn raw_sparql_chunks_still_work() {
        let embedded = EmbeddedEndpoint::new(dataset());
        let q = "SELECT ?m FROM <http://g> WHERE { ?m <http://x/starring> ?a } LIMIT 30";
        let t = embedded.query_chunk(q, 0, 10).unwrap();
        assert_eq!(t.len(), 10);
        // A second chunk of the same text reuses the cached prepared plan.
        let t2 = embedded.query_chunk(q, 10, 10).unwrap();
        assert_eq!(t2.len(), 10);
        assert_ne!(t.rows, t2.rows);
    }

    #[test]
    fn zero_column_results_keep_their_rows() {
        // Every pattern position constant: the result is one empty row
        // ("the triple exists"), which the embedded path must preserve
        // exactly like the wire path does.
        let ds = dataset();
        let g = crate::api::KnowledgeGraph::new("http://g").with_prefix("x", "http://x/");
        let hit = g.seed("<http://x/movie0>", "x:starring", "<http://x/actor0>");
        let miss = g.seed("<http://x/movie0>", "x:starring", "<http://x/actor1>");
        let embedded = EmbeddedEndpoint::new(Arc::clone(&ds));
        let wire = crate::client::InProcessEndpoint::new(ds);
        for (frame, rows) in [(&hit, 1), (&miss, 0)] {
            let via_embedded = frame.execute(&embedded).unwrap();
            let via_wire = frame.execute(&wire).unwrap();
            assert_eq!(via_embedded, via_wire);
            assert_eq!(via_embedded.len(), rows);
            assert!(via_embedded.columns().is_empty());
        }
    }

    #[test]
    fn shared_uri_cells_are_interned() {
        let embedded = EmbeddedEndpoint::new(dataset());
        let df = frame().execute(&embedded).unwrap();
        // actor0 appears 5 times; all five cells must share one Arc<str>.
        let cells: Vec<&dataframe::Cell> = df
            .column("actor")
            .unwrap()
            .filter(|c| c.as_str() == Some("http://x/actor0"))
            .collect();
        assert_eq!(cells.len(), 5);
        let first = match cells[0] {
            dataframe::Cell::Uri(s) => s.clone(),
            other => panic!("expected Uri, got {other:?}"),
        };
        for c in &cells[1..] {
            match c {
                dataframe::Cell::Uri(s) => assert!(std::sync::Arc::ptr_eq(&first, s)),
                other => panic!("expected Uri, got {other:?}"),
            }
        }
    }
}
