//! Epoch-snapshot concurrent serving: many readers over an immutable
//! dataset snapshot while one writer prepares the next.
//!
//! The paper's deployment story is a live endpoint (Virtuoso) that keeps
//! answering exploratory RDFFrames queries while the knowledge graph is
//! being updated. This module reproduces that contract in-process with an
//! epoch scheme instead of fine-grained locking:
//!
//! * A **snapshot** ([`EpochEndpoints`]) bundles one immutable
//!   `Arc<Dataset>` with an [`EmbeddedEndpoint`] and an
//!   [`InProcessEndpoint`] built over it. Everything a reader touches hangs
//!   off that one `Arc`, so a query admitted against epoch *N* runs against
//!   epoch *N*'s data from first scan to last decode — it can never observe
//!   half of an update ("torn" reads are structurally impossible, not just
//!   avoided).
//! * [`SnapshotServer::snapshot`] is the **read path**: a shared-lock
//!   acquire and an `Arc` clone, nothing else. Readers on different threads
//!   never contend with each other and only overlap a writer for the
//!   instant of the pointer swap.
//! * [`SnapshotServer::update`] is the **write path**: serialized by a
//!   writer mutex, it clones the current dataset (cheap — graphs are
//!   copy-on-write behind `Arc`s), applies the mutation, rebuilds both
//!   endpoints over the new dataset *outside* any lock readers hold, and
//!   publishes the finished epoch with a single pointer swap. In-flight
//!   queries keep their old snapshot alive through their own `Arc` and
//!   drain naturally.
//!
//! Plan caches carry across epochs: the rebuilt endpoints share the
//! previous epoch's caches (see [`EmbeddedEndpoint::with_dataset`]), and
//! every cached plan is stamped with the
//! [`Dataset::stats_generation`] it was optimized under. A published
//! mutation bumps the generation, so the first execution of each query on
//! the new epoch re-optimizes against fresh statistics while untouched
//! epochs keep serving cached plans.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

use rdf_model::Dataset;
use sparql_engine::EngineConfig;

use crate::client::{EmbeddedEndpoint, EndpointConfig, InProcessEndpoint};
use crate::error::{FrameError, Result};

/// Describe a caught panic payload (panics carry `&str` or `String` in
/// practice; anything else gets a placeholder).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One published epoch: an immutable dataset snapshot plus the two endpoint
/// flavors serving it. Cloned `Arc`s of this struct are what readers hold;
/// an epoch stays fully usable for as long as any reader keeps it alive,
/// even after newer epochs are published.
pub struct EpochEndpoints {
    epoch: u64,
    generation: u64,
    dataset: Arc<Dataset>,
    embedded: EmbeddedEndpoint,
    wire: InProcessEndpoint,
}

impl std::fmt::Debug for EpochEndpoints {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochEndpoints")
            .field("epoch", &self.epoch)
            .field("generation", &self.generation)
            .finish_non_exhaustive()
    }
}

impl EpochEndpoints {
    /// Monotone publish counter (the initial snapshot is epoch 0).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The dataset's [`Dataset::stats_generation`] at publish time — the
    /// same stamp the plan caches validate against.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The immutable dataset this epoch serves.
    pub fn dataset(&self) -> &Arc<Dataset> {
        &self.dataset
    }

    /// The embedded (columnar, no-wire) endpoint over this epoch.
    pub fn embedded(&self) -> &EmbeddedEndpoint {
        &self.embedded
    }

    /// The wire-faithful (paginated, XML round-trip) endpoint over this
    /// epoch.
    pub fn wire(&self) -> &InProcessEndpoint {
        &self.wire
    }
}

/// Serves immutable dataset epochs to concurrent readers while one writer
/// at a time builds the next epoch. See the module docs for the protocol.
pub struct SnapshotServer {
    /// The currently published epoch. Readers take the lock shared for the
    /// duration of one `Arc` clone; [`SnapshotServer::update`] takes it
    /// exclusively for one pointer swap.
    current: RwLock<Arc<EpochEndpoints>>,
    /// Serializes writers: the next epoch is built from the latest
    /// published one, so two concurrent updates must not interleave.
    writer: Mutex<()>,
    /// Epochs published so far, including the initial one.
    epochs_published: AtomicU64,
}

impl SnapshotServer {
    /// A server over `dataset` with default engine and endpoint
    /// configuration.
    pub fn new(dataset: Arc<Dataset>) -> Self {
        Self::with_configs(dataset, EngineConfig::new(), EndpointConfig::default())
    }

    /// A server with explicit configuration for the embedded engine and the
    /// wire endpoint. Both carry over unchanged to every future epoch.
    pub fn with_configs(
        dataset: Arc<Dataset>,
        engine_config: EngineConfig,
        endpoint_config: EndpointConfig,
    ) -> Self {
        let embedded = EmbeddedEndpoint::with_engine_config(Arc::clone(&dataset), engine_config);
        let wire = InProcessEndpoint::with_config(Arc::clone(&dataset), endpoint_config);
        let first = EpochEndpoints {
            epoch: 0,
            generation: dataset.stats_generation(),
            dataset,
            embedded,
            wire,
        };
        SnapshotServer {
            current: RwLock::new(Arc::new(first)),
            writer: Mutex::new(()),
            epochs_published: AtomicU64::new(1),
        }
    }

    /// The currently published epoch. This is the entire read path: queries
    /// executed through the returned handle see exactly one dataset version
    /// regardless of what writers publish meanwhile.
    ///
    /// Poison-proof: the protected state is a plain `Arc`, which is swapped
    /// atomically under the lock — a panic elsewhere can never leave it
    /// half-written, so a poisoned lock is recovered rather than propagated
    /// and the last published epoch keeps serving.
    pub fn snapshot(&self) -> Arc<EpochEndpoints> {
        Arc::clone(&self.current.read().unwrap_or_else(|p| p.into_inner()))
    }

    /// Build and publish the next epoch by applying `mutate` to a copy of
    /// the current dataset. Serialized against other writers; readers stay
    /// unblocked the whole time except for the final pointer swap. Returns
    /// the newly published epoch.
    ///
    /// A panicking `mutate` closure does **not** wedge the server: the
    /// panic is caught, the half-mutated dataset copy is discarded, nothing
    /// is published, and the panic surfaces as a typed
    /// [`FrameError::Mutation`] while readers keep serving the last
    /// published epoch.
    pub fn update(&self, mutate: impl FnOnce(&mut Dataset)) -> Result<Arc<EpochEndpoints>> {
        let _writer = self.writer_lock();
        // Snapshot → clone → mutate → rebuild, all outside the read lock:
        // readers keep serving the old epoch while this runs.
        let base = self.snapshot();
        let mut next = (*base.dataset).clone();
        // The mutation runs on a private copy: if it panics, the copy is
        // dropped and the published state was never touched — catching the
        // unwind is safe by construction, not by audit.
        catch_unwind(AssertUnwindSafe(|| mutate(&mut next))).map_err(|p| {
            FrameError::Mutation(format!("mutation panicked: {}", panic_message(&*p)))
        })?;
        Ok(self.publish(Arc::new(next)))
    }

    /// Publish `dataset` as the next epoch, rebuilding both endpoints over
    /// it (sharing the previous epoch's plan caches) and swapping the epoch
    /// pointer. Serialized against [`SnapshotServer::update`] writers.
    ///
    /// This is the publication half of the write path, split out so a
    /// durable front door (see [`crate::client::DurableSnapshotServer`])
    /// can commit the mutation to stable storage first and publish the
    /// *store's* canonical dataset rather than a privately mutated clone.
    pub fn publish_dataset(&self, dataset: Arc<Dataset>) -> Arc<EpochEndpoints> {
        let _writer = self.writer_lock();
        self.publish(dataset)
    }

    /// Swap the epoch pointer to a fully built next epoch. Caller must hold
    /// the writer lock.
    fn publish(&self, next: Arc<Dataset>) -> Arc<EpochEndpoints> {
        let base = self.snapshot();
        let published = Arc::new(EpochEndpoints {
            epoch: base.epoch + 1,
            generation: next.stats_generation(),
            embedded: base.embedded.with_dataset(Arc::clone(&next)),
            wire: base.wire.with_dataset(Arc::clone(&next)),
            dataset: next,
        });
        *self.current.write().unwrap_or_else(|p| p.into_inner()) = Arc::clone(&published);
        self.epochs_published.fetch_add(1, Ordering::Relaxed);
        published
    }

    /// The writer mutex, recovering poison: it guards no data (the epoch
    /// swap is atomic under `current`), only writer ordering, so a panicked
    /// previous writer leaves nothing inconsistent behind.
    fn writer_lock(&self) -> MutexGuard<'_, ()> {
        self.writer.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Epochs published so far, counting the initial snapshot.
    pub fn epochs_published(&self) -> u64 {
        self.epochs_published.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf_model::{Graph, Term, Triple};

    // The whole point is cross-thread sharing; lock it in at compile time.
    const _: fn() = || {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SnapshotServer>();
        assert_send_sync::<EpochEndpoints>();
    };

    fn triple(i: usize) -> Triple {
        Triple::new(
            Term::iri(format!("http://x/movie{i}")),
            Term::iri("http://x/starring"),
            Term::iri(format!("http://x/actor{}", i % 5)),
        )
    }

    fn dataset(n: usize) -> Arc<Dataset> {
        let mut g = Graph::new();
        for i in 0..n {
            g.insert(&triple(i));
        }
        let mut ds = Dataset::new();
        ds.insert_graph("http://g", g);
        Arc::new(ds)
    }

    fn frame() -> crate::api::RDFFrame {
        crate::api::KnowledgeGraph::new("http://g")
            .with_prefix("x", "http://x/")
            .feature_domain_range("x:starring", "movie", "actor")
    }

    #[test]
    fn update_publishes_new_epoch_old_snapshot_stays_usable() {
        let server = SnapshotServer::new(dataset(10));
        let before = server.snapshot();
        assert_eq!(before.epoch(), 0);
        assert_eq!(frame().execute(before.embedded()).unwrap().len(), 10);

        let after = server
            .update(|ds| {
                ds.append_triples("http://g", [triple(100)]);
            })
            .unwrap();
        assert_eq!(after.epoch(), 1);
        assert!(after.generation() > before.generation());
        assert_eq!(server.epochs_published(), 2);

        // The old handle still serves the old data; the new one sees the
        // appended triple; both agree with a fresh snapshot().
        assert_eq!(frame().execute(before.embedded()).unwrap().len(), 10);
        assert_eq!(frame().execute(after.embedded()).unwrap().len(), 11);
        assert_eq!(server.snapshot().epoch(), 1);
    }

    #[test]
    fn wire_and_embedded_agree_within_an_epoch() {
        let server = SnapshotServer::new(dataset(25));
        server
            .update(|ds| {
                ds.append_triples("http://g", [triple(200), triple(201)]);
            })
            .unwrap();
        let snap = server.snapshot();
        let via_embedded = frame().execute(snap.embedded()).unwrap();
        let via_wire = frame().execute(snap.wire()).unwrap();
        assert_eq!(via_embedded, via_wire);
        assert_eq!(via_embedded.len(), 27);
    }

    #[test]
    fn plan_cache_reoptimizes_on_generation_change_only() {
        let server = SnapshotServer::new(dataset(25));
        let f = frame();
        let snap0 = server.snapshot();
        f.execute(snap0.embedded()).unwrap();
        let model = crate::model::generator::build_query_model(&f).unwrap();
        let plan0 = snap0.embedded().cached_model_plan(&model).unwrap();

        // Same epoch, second execution: cache hit, same Arc.
        f.execute(snap0.embedded()).unwrap();
        let plan0_again = snap0.embedded().cached_model_plan(&model).unwrap();
        assert!(Arc::ptr_eq(&plan0, &plan0_again));

        // Published mutation bumps the generation: the shared cache entry
        // goes stale and the next execution on the new epoch re-optimizes.
        let snap1 = server
            .update(|ds| {
                ds.append_triples("http://g", [triple(300)]);
            })
            .unwrap();
        f.execute(snap1.embedded()).unwrap();
        let plan1 = snap1.embedded().cached_model_plan(&model).unwrap();
        assert!(!Arc::ptr_eq(&plan0, &plan1));
    }

    #[test]
    fn panicking_mutator_is_caught_and_server_keeps_serving() {
        let server = SnapshotServer::new(dataset(10));
        let before = server.snapshot();

        let err = server
            .update(|_ds| panic!("boom in mutator"))
            .expect_err("panicking mutation must surface as an error");
        match &err {
            FrameError::Mutation(m) => assert!(m.contains("boom in mutator"), "got: {m}"),
            other => panic!("expected Mutation error, got {other:?}"),
        }
        assert!(!err.is_retryable());

        // Nothing was published and the server is not wedged: the last
        // epoch keeps serving and a subsequent good update succeeds.
        assert_eq!(server.snapshot().epoch(), before.epoch());
        assert_eq!(server.epochs_published(), 1);
        assert_eq!(
            frame().execute(server.snapshot().embedded()).unwrap().len(),
            10
        );

        let after = server
            .update(|ds| {
                ds.append_triples("http://g", [triple(500)]);
            })
            .unwrap();
        assert_eq!(after.epoch(), 1);
        assert_eq!(frame().execute(after.embedded()).unwrap().len(), 11);
    }
}
