//! Epoch-snapshot concurrent serving: many readers over an immutable
//! dataset snapshot while one writer prepares the next.
//!
//! The paper's deployment story is a live endpoint (Virtuoso) that keeps
//! answering exploratory RDFFrames queries while the knowledge graph is
//! being updated. This module reproduces that contract in-process with an
//! epoch scheme instead of fine-grained locking:
//!
//! * A **snapshot** ([`EpochEndpoints`]) bundles one immutable
//!   `Arc<Dataset>` with an [`EmbeddedEndpoint`] and an
//!   [`InProcessEndpoint`] built over it. Everything a reader touches hangs
//!   off that one `Arc`, so a query admitted against epoch *N* runs against
//!   epoch *N*'s data from first scan to last decode — it can never observe
//!   half of an update ("torn" reads are structurally impossible, not just
//!   avoided).
//! * [`SnapshotServer::snapshot`] is the **read path**: a shared-lock
//!   acquire and an `Arc` clone, nothing else. Readers on different threads
//!   never contend with each other and only overlap a writer for the
//!   instant of the pointer swap.
//! * [`SnapshotServer::update`] is the **write path**: serialized by a
//!   writer mutex, it clones the current dataset (cheap — graphs are
//!   copy-on-write behind `Arc`s), applies the mutation, rebuilds both
//!   endpoints over the new dataset *outside* any lock readers hold, and
//!   publishes the finished epoch with a single pointer swap. In-flight
//!   queries keep their old snapshot alive through their own `Arc` and
//!   drain naturally.
//!
//! Plan caches carry across epochs: the rebuilt endpoints share the
//! previous epoch's caches (see [`EmbeddedEndpoint::with_dataset`]), and
//! every cached plan is stamped with the
//! [`Dataset::stats_generation`] it was optimized under. A published
//! mutation bumps the generation, so the first execution of each query on
//! the new epoch re-optimizes against fresh statistics while untouched
//! epochs keep serving cached plans.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use rdf_model::Dataset;
use sparql_engine::EngineConfig;

use crate::client::{EmbeddedEndpoint, EndpointConfig, InProcessEndpoint};

/// One published epoch: an immutable dataset snapshot plus the two endpoint
/// flavors serving it. Cloned `Arc`s of this struct are what readers hold;
/// an epoch stays fully usable for as long as any reader keeps it alive,
/// even after newer epochs are published.
pub struct EpochEndpoints {
    epoch: u64,
    generation: u64,
    dataset: Arc<Dataset>,
    embedded: EmbeddedEndpoint,
    wire: InProcessEndpoint,
}

impl EpochEndpoints {
    /// Monotone publish counter (the initial snapshot is epoch 0).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The dataset's [`Dataset::stats_generation`] at publish time — the
    /// same stamp the plan caches validate against.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The immutable dataset this epoch serves.
    pub fn dataset(&self) -> &Arc<Dataset> {
        &self.dataset
    }

    /// The embedded (columnar, no-wire) endpoint over this epoch.
    pub fn embedded(&self) -> &EmbeddedEndpoint {
        &self.embedded
    }

    /// The wire-faithful (paginated, XML round-trip) endpoint over this
    /// epoch.
    pub fn wire(&self) -> &InProcessEndpoint {
        &self.wire
    }
}

/// Serves immutable dataset epochs to concurrent readers while one writer
/// at a time builds the next epoch. See the module docs for the protocol.
pub struct SnapshotServer {
    /// The currently published epoch. Readers take the lock shared for the
    /// duration of one `Arc` clone; [`SnapshotServer::update`] takes it
    /// exclusively for one pointer swap.
    current: RwLock<Arc<EpochEndpoints>>,
    /// Serializes writers: the next epoch is built from the latest
    /// published one, so two concurrent updates must not interleave.
    writer: Mutex<()>,
    /// Epochs published so far, including the initial one.
    epochs_published: AtomicU64,
}

impl SnapshotServer {
    /// A server over `dataset` with default engine and endpoint
    /// configuration.
    pub fn new(dataset: Arc<Dataset>) -> Self {
        Self::with_configs(dataset, EngineConfig::new(), EndpointConfig::default())
    }

    /// A server with explicit configuration for the embedded engine and the
    /// wire endpoint. Both carry over unchanged to every future epoch.
    pub fn with_configs(
        dataset: Arc<Dataset>,
        engine_config: EngineConfig,
        endpoint_config: EndpointConfig,
    ) -> Self {
        let embedded = EmbeddedEndpoint::with_engine_config(Arc::clone(&dataset), engine_config);
        let wire = InProcessEndpoint::with_config(Arc::clone(&dataset), endpoint_config);
        let first = EpochEndpoints {
            epoch: 0,
            generation: dataset.stats_generation(),
            dataset,
            embedded,
            wire,
        };
        SnapshotServer {
            current: RwLock::new(Arc::new(first)),
            writer: Mutex::new(()),
            epochs_published: AtomicU64::new(1),
        }
    }

    /// The currently published epoch. This is the entire read path: queries
    /// executed through the returned handle see exactly one dataset version
    /// regardless of what writers publish meanwhile.
    pub fn snapshot(&self) -> Arc<EpochEndpoints> {
        Arc::clone(&self.current.read().expect("snapshot lock poisoned"))
    }

    /// Build and publish the next epoch by applying `mutate` to a copy of
    /// the current dataset. Serialized against other writers; readers stay
    /// unblocked the whole time except for the final pointer swap. Returns
    /// the newly published epoch.
    pub fn update(&self, mutate: impl FnOnce(&mut Dataset)) -> Arc<EpochEndpoints> {
        let _writer = self.writer.lock().expect("writer lock poisoned");
        // Snapshot → clone → mutate → rebuild, all outside the read lock:
        // readers keep serving the old epoch while this runs.
        let base = self.snapshot();
        let mut next = (*base.dataset).clone();
        mutate(&mut next);
        let next = Arc::new(next);
        let published = Arc::new(EpochEndpoints {
            epoch: base.epoch + 1,
            generation: next.stats_generation(),
            embedded: base.embedded.with_dataset(Arc::clone(&next)),
            wire: base.wire.with_dataset(Arc::clone(&next)),
            dataset: next,
        });
        *self.current.write().expect("snapshot lock poisoned") = Arc::clone(&published);
        self.epochs_published.fetch_add(1, Ordering::Relaxed);
        published
    }

    /// Epochs published so far, counting the initial snapshot.
    pub fn epochs_published(&self) -> u64 {
        self.epochs_published.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf_model::{Graph, Term, Triple};

    // The whole point is cross-thread sharing; lock it in at compile time.
    const _: fn() = || {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SnapshotServer>();
        assert_send_sync::<EpochEndpoints>();
    };

    fn triple(i: usize) -> Triple {
        Triple::new(
            Term::iri(format!("http://x/movie{i}")),
            Term::iri("http://x/starring"),
            Term::iri(format!("http://x/actor{}", i % 5)),
        )
    }

    fn dataset(n: usize) -> Arc<Dataset> {
        let mut g = Graph::new();
        for i in 0..n {
            g.insert(&triple(i));
        }
        let mut ds = Dataset::new();
        ds.insert_graph("http://g", g);
        Arc::new(ds)
    }

    fn frame() -> crate::api::RDFFrame {
        crate::api::KnowledgeGraph::new("http://g")
            .with_prefix("x", "http://x/")
            .feature_domain_range("x:starring", "movie", "actor")
    }

    #[test]
    fn update_publishes_new_epoch_old_snapshot_stays_usable() {
        let server = SnapshotServer::new(dataset(10));
        let before = server.snapshot();
        assert_eq!(before.epoch(), 0);
        assert_eq!(frame().execute(before.embedded()).unwrap().len(), 10);

        let after = server.update(|ds| {
            ds.append_triples("http://g", [triple(100)]);
        });
        assert_eq!(after.epoch(), 1);
        assert!(after.generation() > before.generation());
        assert_eq!(server.epochs_published(), 2);

        // The old handle still serves the old data; the new one sees the
        // appended triple; both agree with a fresh snapshot().
        assert_eq!(frame().execute(before.embedded()).unwrap().len(), 10);
        assert_eq!(frame().execute(after.embedded()).unwrap().len(), 11);
        assert_eq!(server.snapshot().epoch(), 1);
    }

    #[test]
    fn wire_and_embedded_agree_within_an_epoch() {
        let server = SnapshotServer::new(dataset(25));
        server.update(|ds| {
            ds.append_triples("http://g", [triple(200), triple(201)]);
        });
        let snap = server.snapshot();
        let via_embedded = frame().execute(snap.embedded()).unwrap();
        let via_wire = frame().execute(snap.wire()).unwrap();
        assert_eq!(via_embedded, via_wire);
        assert_eq!(via_embedded.len(), 27);
    }

    #[test]
    fn plan_cache_reoptimizes_on_generation_change_only() {
        let server = SnapshotServer::new(dataset(25));
        let f = frame();
        let snap0 = server.snapshot();
        f.execute(snap0.embedded()).unwrap();
        let model = crate::model::generator::build_query_model(&f).unwrap();
        let plan0 = snap0.embedded().cached_model_plan(&model).unwrap();

        // Same epoch, second execution: cache hit, same Arc.
        f.execute(snap0.embedded()).unwrap();
        let plan0_again = snap0.embedded().cached_model_plan(&model).unwrap();
        assert!(Arc::ptr_eq(&plan0, &plan0_again));

        // Published mutation bumps the generation: the shared cache entry
        // goes stale and the next execution on the new epoch re-optimizes.
        let snap1 = server.update(|ds| {
            ds.append_triples("http://g", [triple(300)]);
        });
        f.execute(snap1.embedded()).unwrap();
        let plan1 = snap1.embedded().cached_model_plan(&model).unwrap();
        assert!(!Arc::ptr_eq(&plan0, &plan1));
    }
}
