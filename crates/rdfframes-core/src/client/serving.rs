//! Durable, overload-resilient serving: the front door that fuses the
//! epoch-snapshot read path with WAL-backed storage and admission control.
//!
//! [`SnapshotServer`] (PR 10) gives lock-free epoch reads and
//! [`rdf_model::persist::Store`] (PR 9) gives crash-consistent durability,
//! but on their own a "served" update lives only in memory and the front
//! door accepts unbounded concurrent work. [`DurableSnapshotServer`] wires
//! both together and adds a governor in front:
//!
//! # Durability before publish
//!
//! Every mutation ([`DurableSnapshotServer::insert_graph`] /
//! [`DurableSnapshotServer::append_triples`]) commits through the store's
//! write-ahead log **before** the epoch pointer swap. The published dataset
//! is the *store's* canonical state (`Store::shared_dataset`), not a
//! privately mutated clone — the store logs mutations in canonical order
//! and applies the logged record, so the state readers serve is physically
//! identical to the state recovery rebuilds, down to slab layout and scan
//! counters. A failed commit publishes nothing: readers keep the last
//! epoch, the caller gets a typed [`FrameError::Mutation`], and restart
//! recovery lands on exactly the committed prefix.
//!
//! Checkpointing is threshold-triggered ([`ServingConfig::
//! checkpoint_wal_bytes`]) and runs *after* the publish, while readers
//! serve the new epoch: a checkpoint failure after a successful commit
//! loses nothing (old snapshot + full WAL still cover every committed
//! mutation) and is only counted, not surfaced.
//!
//! # Admission control and the degradation ladder
//!
//! [`AdmissionGovernor`] caps concurrently executing queries at
//! [`ServingConfig::max_in_flight`]. Excess load walks a ladder instead of
//! queueing unboundedly:
//!
//! 1. **Shed wire before embedded.** Wire-class queries (paginated,
//!    re-executing per chunk — the expensive surface) never wait: at
//!    saturation they are shed immediately with a retryable
//!    [`FrameError::Overloaded`].
//! 2. **Bounded queueing for embedded.** Embedded-class queries may wait
//!    for a slot, but only [`ServingConfig::max_waiters`] of them and only
//!    for [`ServingConfig::max_wait`]; past either bound they are shed
//!    with the same typed error — never a hang, never a panic.
//! 3. **Degrade completeness under deadline pressure.** A per-query
//!    deadline ([`ServingConfig::query_deadline`]) is injected into the
//!    engine's [`QueryBudget`], so an admitted query that overruns is cut
//!    off with a typed budget error; the wire path goes through
//!    [`Executor::run_partial`], so a deadline trip mid-pagination returns
//!    the intact prefix with [`Completeness::Partial`] instead of
//!    discarding everything.
//!
//! Shedding happens before a query touches any snapshot, so shed queries
//! cannot corrupt accepted ones; accepted queries run against one
//! immutable epoch end to end and return results identical to an unloaded
//! run. Everything is observable through [`ServerStats`], whose admission
//! counters reconcile (`admitted + shed == submitted`,
//! `timed_out <= admitted`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use dataframe::DataFrame;
use rdf_model::persist::{RecoveryReport, Store, StoreStats, Vfs};
use rdf_model::{Graph, Triple};
use sparql_engine::{EngineConfig, QueryBudget};

use crate::api::RDFFrame;
use crate::client::concurrent::{EpochEndpoints, SnapshotServer};
use crate::client::EndpointConfig;
use crate::error::{FrameError, Result};
use crate::exec::{Completeness, Executor, PartialFrame};
use crate::model::{generator, render};

/// Map a storage failure onto the client taxonomy: the mutation was not
/// published and the server keeps serving, which is exactly what
/// [`FrameError::Mutation`] says.
fn storage_error(e: rdf_model::persist::StorageError) -> FrameError {
    FrameError::Mutation(e.to_string())
}

/// Did this error come from the deadline axis of the engine budget?
/// (The engine's `ResourceKind::Deadline` displays as "deadline (ms)",
/// preserved through [`FrameError::ResourceExhausted`]'s detail.)
fn is_deadline_trip(e: &FrameError) -> bool {
    matches!(e, FrameError::ResourceExhausted(detail) if detail.contains("deadline"))
}

/// Which front-door surface a query arrives on — the shedding ladder
/// treats them differently (wire sheds first, embedded may briefly queue).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryClass {
    /// Compiled-model columnar execution (cheap, latency-sensitive).
    Embedded,
    /// Paginated SPARQL-over-wire execution (re-evaluates per chunk).
    Wire,
}

/// Tuning for [`DurableSnapshotServer`].
#[derive(Debug, Clone)]
pub struct ServingConfig {
    /// Queries allowed to execute concurrently; the governor's hard cap.
    pub max_in_flight: usize,
    /// Embedded-class queries allowed to wait for a slot at once. Wire
    /// never waits. Zero disables queueing entirely.
    pub max_waiters: usize,
    /// Longest an embedded-class query waits for a slot before it is shed.
    pub max_wait: Duration,
    /// Per-query execution deadline injected into the engine budget
    /// (`None` = no deadline). Applies on top of any limits already in the
    /// engine/endpoint configs' budgets; the wire path additionally
    /// enforces it cumulatively across pagination chunks, degrading to an
    /// intact prefix ([`crate::Completeness::Partial`]) when it expires
    /// between chunks.
    pub query_deadline: Option<Duration>,
    /// Degraded wire service: stop paginating once this many rows are
    /// assembled and return the intact prefix as
    /// [`crate::Completeness::Partial`] (`None` = assemble everything).
    /// Bounds per-query work under overload without shedding the query.
    pub max_wire_result_rows: Option<u64>,
    /// Engine configuration for the embedded endpoint of every epoch.
    pub engine_config: EngineConfig,
    /// Configuration for the wire endpoint of every epoch.
    pub endpoint_config: EndpointConfig,
    /// Checkpoint (snapshot + WAL reset) after a mutation leaves the WAL
    /// larger than this many bytes. `None` = only explicit checkpoints.
    pub checkpoint_wal_bytes: Option<u64>,
}

impl Default for ServingConfig {
    fn default() -> Self {
        ServingConfig {
            max_in_flight: 64,
            max_waiters: 64,
            max_wait: Duration::from_millis(100),
            query_deadline: None,
            max_wire_result_rows: None,
            engine_config: EngineConfig::new(),
            endpoint_config: EndpointConfig::default(),
            checkpoint_wal_bytes: Some(4 << 20),
        }
    }
}

/// One snapshot of the server's observability counters.
///
/// The admission triple always reconciles: `admitted + shed == submitted`
/// (every submission is decided exactly once), and `timed_out <= admitted`
/// (only an admitted query can trip its deadline).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Queries that reached the front door.
    pub submitted: u64,
    /// Queries granted an execution slot.
    pub admitted: u64,
    /// Queries rejected with [`FrameError::Overloaded`].
    pub shed: u64,
    /// Admitted queries cut off by the injected per-query deadline.
    pub timed_out: u64,
    /// Mutations durably WAL-committed ([`StoreStats::commits`]).
    pub wal_commits: u64,
    /// Checkpoints completed ([`StoreStats::checkpoints`]).
    pub checkpoints: u64,
    /// Threshold-triggered checkpoints that failed (nothing lost — the old
    /// snapshot plus the full WAL still cover every commit).
    pub checkpoint_failures: u64,
    /// Epochs published, counting the one recovery served first.
    pub epochs_published: u64,
}

/// Waiting-room bookkeeping behind the governor's mutex.
struct GovernorState {
    in_flight: usize,
    waiting: usize,
}

/// Front-door concurrency governor: a counting semaphore with a bounded,
/// deadline-capped wait queue and per-class shedding policy.
///
/// Exposed (via [`DurableSnapshotServer::governor`]) so tests can pin the
/// server at saturation deterministically: acquire `max_in_flight` permits
/// directly, then every further submission sheds with no timing involved.
pub struct AdmissionGovernor {
    state: Mutex<GovernorState>,
    slots_free: Condvar,
    max_in_flight: usize,
    max_waiters: usize,
    max_wait: Duration,
    submitted: AtomicU64,
    admitted: AtomicU64,
    shed: AtomicU64,
}

impl AdmissionGovernor {
    fn new(config: &ServingConfig) -> Self {
        AdmissionGovernor {
            state: Mutex::new(GovernorState {
                in_flight: 0,
                waiting: 0,
            }),
            slots_free: Condvar::new(),
            max_in_flight: config.max_in_flight.max(1),
            max_waiters: config.max_waiters,
            max_wait: config.max_wait,
            submitted: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
        }
    }

    /// The state mutex, recovering poison: the two counters are only ever
    /// adjusted under the lock and never observed mid-adjustment, so a
    /// panicked holder leaves them consistent.
    fn lock_state(&self) -> MutexGuard<'_, GovernorState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Ask for an execution slot. Returns a permit that releases the slot
    /// on drop, or a retryable [`FrameError::Overloaded`] when the ladder
    /// says to shed this class right now. Never blocks longer than
    /// `max_wait`, never panics.
    pub fn admit(&self, class: QueryClass) -> Result<AdmissionPermit<'_>> {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        let mut st = self.lock_state();
        if st.in_flight < self.max_in_flight {
            st.in_flight += 1;
            drop(st);
            self.admitted.fetch_add(1, Ordering::Relaxed);
            return Ok(AdmissionPermit { governor: self });
        }
        // Saturated. Rung 1: wire sheds immediately; embedded may queue,
        // but only within the waiting-room bound.
        if class == QueryClass::Wire || st.waiting >= self.max_waiters || self.max_wait.is_zero() {
            let msg = format!(
                "all {} slots busy, {} waiting ({:?} class sheds)",
                self.max_in_flight, st.waiting, class
            );
            drop(st);
            self.shed.fetch_add(1, Ordering::Relaxed);
            return Err(FrameError::Overloaded(msg));
        }
        st.waiting += 1;
        let give_up = Instant::now() + self.max_wait;
        loop {
            let remaining = give_up.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                st.waiting -= 1;
                drop(st);
                self.shed.fetch_add(1, Ordering::Relaxed);
                return Err(FrameError::Overloaded(format!(
                    "no slot freed within {:?} (all {} busy)",
                    self.max_wait, self.max_in_flight
                )));
            }
            let (guard, _timeout) = self
                .slots_free
                .wait_timeout(st, remaining)
                .unwrap_or_else(|p| p.into_inner());
            st = guard;
            if st.in_flight < self.max_in_flight {
                st.waiting -= 1;
                st.in_flight += 1;
                drop(st);
                self.admitted.fetch_add(1, Ordering::Relaxed);
                return Ok(AdmissionPermit { governor: self });
            }
            // Spurious wakeup or someone else took the slot: loop, and let
            // the deadline check at the top decide whether to shed.
        }
    }

    /// Queries that reached this governor so far.
    pub fn submitted(&self) -> u64 {
        self.submitted.load(Ordering::Relaxed)
    }

    /// Queries granted a slot so far.
    pub fn admitted(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }

    /// Queries shed so far.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }
}

/// A granted execution slot; dropping it frees the slot and wakes waiters.
pub struct AdmissionPermit<'g> {
    governor: &'g AdmissionGovernor,
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        let mut st = self.governor.lock_state();
        st.in_flight -= 1;
        drop(st);
        // notify_all, not notify_one: several waiters may be racing the
        // same freed slot and a lost wakeup would stall one until its
        // timeout even though a slot was free.
        self.governor.slots_free.notify_all();
    }
}

/// A [`SnapshotServer`] whose mutations are durable before they are
/// visible and whose query front door is governed. See the module docs for
/// the protocol and the degradation ladder.
pub struct DurableSnapshotServer {
    /// The durable source of truth. Mutations lock it exclusively; the
    /// read path never touches it (readers hold epoch snapshots).
    store: Mutex<Store>,
    /// Epoch publication machinery; serves `store`'s canonical datasets.
    inner: SnapshotServer,
    governor: AdmissionGovernor,
    checkpoint_wal_bytes: Option<u64>,
    /// Cross-chunk wire degradation knobs (see [`ServingConfig`]).
    query_deadline: Option<Duration>,
    max_wire_result_rows: Option<u64>,
    checkpoint_failures: AtomicU64,
    timed_out: AtomicU64,
}

impl DurableSnapshotServer {
    /// Open (or create) a durable server over `vfs`: run store recovery
    /// (snapshot load + WAL replay + torn-tail truncation) and publish the
    /// recovered state as the first served epoch. A reopened server
    /// therefore resumes at exactly the committed epoch.
    pub fn open(vfs: Arc<dyn Vfs>, config: ServingConfig) -> Result<Self> {
        let store = Store::open(vfs).map_err(storage_error)?;
        Ok(Self::from_store(store, config))
    }

    /// Open (or create) a durable server in directory `dir` on the real
    /// file system.
    pub fn open_path(dir: impl AsRef<std::path::Path>, config: ServingConfig) -> Result<Self> {
        let store = Store::open_path(dir).map_err(storage_error)?;
        Ok(Self::from_store(store, config))
    }

    fn from_store(store: Store, config: ServingConfig) -> Self {
        let mut engine_config = config.engine_config.clone();
        let mut endpoint_config = config.endpoint_config.clone();
        if let Some(deadline) = config.query_deadline {
            engine_config.budget = with_deadline(engine_config.budget, deadline);
            endpoint_config.budget = with_deadline(endpoint_config.budget, deadline);
        }
        let inner =
            SnapshotServer::with_configs(store.shared_dataset(), engine_config, endpoint_config);
        DurableSnapshotServer {
            governor: AdmissionGovernor::new(&config),
            checkpoint_wal_bytes: config.checkpoint_wal_bytes,
            query_deadline: config.query_deadline,
            max_wire_result_rows: config.max_wire_result_rows,
            checkpoint_failures: AtomicU64::new(0),
            timed_out: AtomicU64::new(0),
            store: Mutex::new(store),
            inner,
        }
    }

    /// The store mutex, recovering poison: the store keeps its own
    /// consistency (a failed commit rolls back or self-poisons with a
    /// typed error), so lock poison adds nothing.
    fn lock_store(&self) -> MutexGuard<'_, Store> {
        self.store.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Durably insert (or replace) a named graph, then publish the new
    /// epoch. The WAL commit happens strictly before the pointer swap: on
    /// any storage failure nothing is published, readers keep the last
    /// epoch, and the error comes back as [`FrameError::Mutation`].
    pub fn insert_graph(&self, uri: &str, graph: &Graph) -> Result<Arc<EpochEndpoints>> {
        let mut store = self.lock_store();
        store.insert_graph(uri, graph).map_err(storage_error)?;
        Ok(self.publish_and_maybe_checkpoint(&mut store))
    }

    /// Durably append triples to an existing graph, then publish the new
    /// epoch. Same durability-before-publish contract as
    /// [`DurableSnapshotServer::insert_graph`].
    pub fn append_triples(&self, uri: &str, triples: Vec<Triple>) -> Result<Arc<EpochEndpoints>> {
        let mut store = self.lock_store();
        store.append_triples(uri, triples).map_err(storage_error)?;
        Ok(self.publish_and_maybe_checkpoint(&mut store))
    }

    /// Publish the store's canonical post-commit dataset, then apply the
    /// WAL-size checkpoint policy while readers already serve the new
    /// epoch. A checkpoint failure is deliberately not surfaced: the
    /// commit is durable either way (old snapshot + full WAL), so the
    /// mutation succeeded; the failure is counted and the store's own
    /// poisoning (if any) surfaces on the next mutation.
    fn publish_and_maybe_checkpoint(&self, store: &mut Store) -> Arc<EpochEndpoints> {
        let published = self.inner.publish_dataset(store.shared_dataset());
        if let Some(threshold) = self.checkpoint_wal_bytes {
            if store.wal_len() > threshold && store.checkpoint().is_err() {
                self.checkpoint_failures.fetch_add(1, Ordering::Relaxed);
            }
        }
        published
    }

    /// Checkpoint now regardless of WAL size (snapshot + WAL reset).
    pub fn checkpoint(&self) -> Result<()> {
        self.lock_store().checkpoint().map_err(storage_error)
    }

    /// The currently published epoch. Ungoverned: handing out a snapshot
    /// is an `Arc` clone, and queries run through it directly bypass
    /// admission — the governed surface is
    /// [`DurableSnapshotServer::execute`] /
    /// [`DurableSnapshotServer::execute_wire`].
    pub fn snapshot(&self) -> Arc<EpochEndpoints> {
        self.inner.snapshot()
    }

    /// Execute a frame on the embedded path under admission control.
    /// Sheds with retryable [`FrameError::Overloaded`] at saturation
    /// (after bounded queueing); an injected deadline trip comes back as
    /// [`FrameError::ResourceExhausted`] and counts as timed out.
    pub fn execute(&self, frame: &RDFFrame) -> Result<DataFrame> {
        let _permit = self.governor.admit(QueryClass::Embedded)?;
        let snap = self.inner.snapshot();
        let result = Executor::new().execute(frame, snap.embedded());
        if let Err(e) = &result {
            if is_deadline_trip(e) {
                self.timed_out.fetch_add(1, Ordering::Relaxed);
            }
        }
        result
    }

    /// Execute a frame on the paginated wire path under admission control.
    /// Wire never queues: at saturation it sheds immediately (the first
    /// rung of the degradation ladder). Under pressure the result degrades
    /// instead of vanishing: a budget trip after the first chunk — or a
    /// cumulative cross-chunk limit (`query_deadline`,
    /// `max_wire_result_rows`) expiring between chunks — returns the
    /// intact prefix with [`Completeness::Partial`].
    pub fn execute_wire(&self, frame: &RDFFrame) -> Result<PartialFrame> {
        let _permit = self.governor.admit(QueryClass::Wire)?;
        let snap = self.inner.snapshot();
        let model = generator::build_query_model(frame)?;
        let sparql = render::render(&model);
        let mut executor = Executor::new();
        executor.wire_deadline = self.query_deadline;
        executor.wire_row_cap = self.max_wire_result_rows;
        let result = executor.run_partial(&sparql, snap.wire());
        match &result {
            Ok(partial) => {
                if let Completeness::Partial { error } = &partial.completeness {
                    if is_deadline_trip(error) {
                        self.timed_out.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            Err(e) if is_deadline_trip(e) => {
                self.timed_out.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {}
        }
        result
    }

    /// The admission governor — exposed so load tests can saturate the
    /// server deterministically (hold `max_in_flight` permits, then every
    /// submission sheds) instead of racing real queries against a clock.
    pub fn governor(&self) -> &AdmissionGovernor {
        &self.governor
    }

    /// What store recovery found when this server was opened.
    pub fn recovery(&self) -> RecoveryReport {
        self.lock_store().recovery().clone()
    }

    /// Raw storage telemetry since open.
    pub fn store_stats(&self) -> StoreStats {
        self.lock_store().stats()
    }

    /// Length of the valid WAL prefix on disk (observability for the
    /// checkpoint-policy tests).
    pub fn wal_len(&self) -> u64 {
        self.lock_store().wal_len()
    }

    /// One consistent snapshot of the serving counters.
    pub fn stats(&self) -> ServerStats {
        let store = self.lock_store().stats();
        ServerStats {
            submitted: self.governor.submitted(),
            admitted: self.governor.admitted(),
            shed: self.governor.shed(),
            timed_out: self.timed_out.load(Ordering::Relaxed),
            wal_commits: store.commits,
            checkpoints: store.checkpoints,
            checkpoint_failures: self.checkpoint_failures.load(Ordering::Relaxed),
            epochs_published: self.inner.epochs_published(),
        }
    }
}

/// `budget` with `deadline` as its deadline axis (keeping the tighter of
/// the two when one is already set).
fn with_deadline(budget: QueryBudget, deadline: Duration) -> QueryBudget {
    let effective = match budget.deadline {
        Some(existing) => existing.min(deadline),
        None => deadline,
    };
    budget.with_deadline(effective)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf_model::persist::MemVfs;
    use rdf_model::Term;

    const _: fn() = || {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DurableSnapshotServer>();
        assert_send_sync::<AdmissionGovernor>();
    };

    fn triple(i: usize) -> Triple {
        Triple::new(
            Term::iri(format!("http://x/movie{i}")),
            Term::iri("http://x/starring"),
            Term::iri(format!("http://x/actor{}", i % 5)),
        )
    }

    fn graph(n: usize) -> Graph {
        let mut g = Graph::new();
        for i in 0..n {
            g.insert(&triple(i));
        }
        g
    }

    fn frame() -> RDFFrame {
        crate::api::KnowledgeGraph::new("http://g")
            .with_prefix("x", "http://x/")
            .feature_domain_range("x:starring", "movie", "actor")
    }

    #[test]
    fn update_is_durable_before_visible_and_restart_resumes_committed_epoch() {
        let vfs = Arc::new(MemVfs::new());
        let server = DurableSnapshotServer::open(vfs.clone(), ServingConfig::default()).unwrap();
        server.insert_graph("http://g", &graph(10)).unwrap();
        server
            .append_triples("http://g", vec![triple(100)])
            .unwrap();
        assert_eq!(server.execute(&frame()).unwrap().len(), 11);
        assert_eq!(server.stats().wal_commits, 2);
        let committed_gen = server.snapshot().generation();

        // Reopen from the same "disk": recovery replays the WAL and the
        // first served epoch is exactly the committed state.
        let reopened = DurableSnapshotServer::open(
            Arc::new(MemVfs::reopen_from(&vfs)),
            ServingConfig::default(),
        )
        .unwrap();
        assert_eq!(reopened.recovery().replayed, 2);
        assert_eq!(reopened.snapshot().generation(), committed_gen);
        assert_eq!(reopened.execute(&frame()).unwrap().len(), 11);
        assert_eq!(reopened.store_stats().recoveries, 1);
    }

    #[test]
    fn failed_commit_publishes_nothing_and_is_typed() {
        let vfs = Arc::new(MemVfs::new());
        let server =
            DurableSnapshotServer::open(Arc::clone(&vfs) as Arc<dyn Vfs>, ServingConfig::default())
                .unwrap();
        server.insert_graph("http://g", &graph(5)).unwrap();

        // Arm the disk *after* the good commit: the next append tears.
        vfs.set_fault_plan(rdf_model::persist::FaultPlan {
            enospc_after_bytes: Some(10),
            ..rdf_model::persist::FaultPlan::none()
        });
        let epoch_before = server.snapshot().epoch();
        let err = server.append_triples("http://g", vec![triple(99)]);
        assert!(matches!(err, Err(FrameError::Mutation(_))), "{err:?}");
        // Nothing published; readers still serve the committed state.
        assert_eq!(server.snapshot().epoch(), epoch_before);
        assert_eq!(server.execute(&frame()).unwrap().len(), 5);
        assert_eq!(server.stats().epochs_published, 2, "initial + 1 commit");
        assert_eq!(server.stats().wal_commits, 1);
    }

    #[test]
    fn wal_threshold_triggers_checkpoint_after_publish() {
        let vfs = Arc::new(MemVfs::new());
        let server = DurableSnapshotServer::open(
            vfs,
            ServingConfig {
                checkpoint_wal_bytes: Some(64),
                ..ServingConfig::default()
            },
        )
        .unwrap();
        server.insert_graph("http://g", &graph(50)).unwrap();
        let stats = server.stats();
        assert_eq!(stats.wal_commits, 1);
        assert_eq!(stats.checkpoints, 1, "50-triple record clears 64 bytes");
        assert!(server.wal_len() <= 64, "WAL was reset by the checkpoint");
        // The epoch published is the committed one regardless.
        assert_eq!(server.execute(&frame()).unwrap().len(), 50);
    }

    #[test]
    fn saturation_sheds_with_typed_retryable_error_and_counters_reconcile() {
        let vfs = Arc::new(MemVfs::new());
        let server = DurableSnapshotServer::open(
            vfs,
            ServingConfig {
                max_in_flight: 2,
                max_waiters: 0,
                max_wait: Duration::ZERO,
                ..ServingConfig::default()
            },
        )
        .unwrap();
        server.insert_graph("http://g", &graph(10)).unwrap();

        // Deterministic saturation: hold both slots, no racing threads.
        let p1 = server.governor().admit(QueryClass::Embedded).unwrap();
        let p2 = server.governor().admit(QueryClass::Embedded).unwrap();
        let err = server.execute(&frame()).expect_err("must shed");
        assert!(matches!(err, FrameError::Overloaded(_)), "{err:?}");
        assert!(err.is_retryable());
        let err = server.execute_wire(&frame()).expect_err("must shed");
        assert!(matches!(err, FrameError::Overloaded(_)), "{err:?}");

        // Freeing a slot re-admits.
        drop(p1);
        assert_eq!(server.execute(&frame()).unwrap().len(), 10);
        drop(p2);

        let stats = server.stats();
        assert_eq!(stats.submitted, 5, "2 direct permits + 3 queries");
        assert_eq!(stats.admitted + stats.shed, stats.submitted);
        assert_eq!(stats.shed, 2);
        assert!(stats.timed_out <= stats.admitted);
    }

    #[test]
    fn zero_deadline_times_out_admitted_queries_typed() {
        let vfs = Arc::new(MemVfs::new());
        let server = DurableSnapshotServer::open(
            vfs,
            ServingConfig {
                query_deadline: Some(Duration::ZERO),
                ..ServingConfig::default()
            },
        )
        .unwrap();
        server.insert_graph("http://g", &graph(10)).unwrap();
        let err = server.execute(&frame()).expect_err("deadline must trip");
        assert!(matches!(err, FrameError::ResourceExhausted(_)), "{err:?}");
        let stats = server.stats();
        assert_eq!(stats.timed_out, 1);
        assert!(stats.timed_out <= stats.admitted);
    }
}
