//! Wire encoding of solution tables.
//!
//! A real SPARQL endpoint serializes every result row (SPARQL JSON/XML/TSV)
//! and the client parses it back. That per-row cost is a first-class part
//! of the paper's measurements — the client-side baselines ship far more
//! rows than RDFFrames does — so the in-process endpoint *actually
//! performs* an encode/decode round trip per chunk (SPARQL-TSV-style)
//! instead of pretending transfer is free.

use rdf_model::term::Literal;
use rdf_model::Term;
use sparql_engine::SolutionTable;

/// Encode a solution table as SPARQL-TSV (terms in N-Triples syntax,
/// columns tab-separated, unbound cells empty).
pub fn encode(table: &SolutionTable) -> String {
    let mut out = String::with_capacity(table.rows.len() * 32 + 64);
    for (i, v) in table.vars.iter().enumerate() {
        if i > 0 {
            out.push('\t');
        }
        out.push('?');
        out.push_str(v);
    }
    out.push('\n');
    for row in &table.rows {
        if row.is_empty() {
            // Zero-column rows (the unit table) need an explicit marker:
            // an empty line is indistinguishable from "no row".
            out.push('\u{2}');
        }
        for (i, cell) in row.iter().enumerate() {
            if i > 0 {
                out.push('\t');
            }
            if let Some(term) = cell {
                encode_term(term, &mut out);
            }
        }
        out.push('\n');
    }
    out
}

fn encode_term(term: &Term, out: &mut String) {
    use std::fmt::Write as _;
    let _ = write!(out, "{term}");
}

/// Decode a SPARQL-TSV document back into a solution table. Returns `None`
/// on malformed input.
pub fn decode(text: &str) -> Option<SolutionTable> {
    let mut lines = text.split('\n');
    let header = lines.next()?;
    let vars: Vec<String> = if header.is_empty() {
        Vec::new()
    } else {
        header
            .split('\t')
            .map(|v| v.strip_prefix('?').unwrap_or(v).to_string())
            .collect()
    };
    let mut table = SolutionTable::with_vars(vars);
    let width = table.vars.len();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        if line == "\u{2}" {
            table.rows.push(Vec::new());
            continue;
        }
        let mut row = Vec::with_capacity(width);
        for field in line.split('\t') {
            if field.is_empty() {
                row.push(None);
            } else {
                row.push(Some(decode_term(field)?));
            }
        }
        if row.len() != width {
            return None;
        }
        table.rows.push(row);
    }
    Some(table)
}

fn decode_term(field: &str) -> Option<Term> {
    let bytes = field.as_bytes();
    match bytes.first()? {
        b'<' => {
            let inner = field.strip_prefix('<')?.strip_suffix('>')?;
            Some(Term::iri(inner.to_string()))
        }
        b'_' => {
            let label = field.strip_prefix("_:")?;
            Some(Term::blank(label.to_string()))
        }
        b'"' => {
            // Find the closing quote, honoring escapes.
            let rest = &field[1..];
            let mut lexical = String::with_capacity(rest.len());
            let mut chars = rest.chars();
            let mut tail = String::new();
            let mut closed = false;
            while let Some(c) = chars.next() {
                match c {
                    '\\' => match chars.next()? {
                        'n' => lexical.push('\n'),
                        'r' => lexical.push('\r'),
                        't' => lexical.push('\t'),
                        '"' => lexical.push('"'),
                        '\\' => lexical.push('\\'),
                        other => lexical.push(other),
                    },
                    '"' => {
                        closed = true;
                        tail = chars.collect();
                        break;
                    }
                    other => lexical.push(other),
                }
            }
            if !closed {
                return None;
            }
            if let Some(lang) = tail.strip_prefix('@') {
                Some(Term::Literal(Literal::lang_string(
                    lexical,
                    lang.to_string(),
                )))
            } else if let Some(dt) = tail.strip_prefix("^^") {
                let dt = dt.strip_prefix('<')?.strip_suffix('>')?;
                Some(Term::Literal(Literal::typed(lexical, dt.to_string())))
            } else if tail.is_empty() {
                Some(Term::string(lexical))
            } else {
                None
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf_model::Literal;

    fn sample() -> SolutionTable {
        SolutionTable {
            vars: vec!["a".into(), "b".into(), "c".into()],
            rows: vec![
                vec![Some(Term::iri("http://x/s")), Some(Term::integer(42)), None],
                vec![
                    Some(Term::string("tab\there \"quoted\"")),
                    Some(Term::Literal(Literal::lang_string("hallo", "de"))),
                    Some(Term::blank("b0")),
                ],
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let t = sample();
        let encoded = encode(&t);
        let decoded = decode(&encoded).expect("decodes");
        assert_eq!(t, decoded);
    }

    #[test]
    fn empty_table_roundtrip() {
        let t = SolutionTable::with_vars(vec!["x".into()]);
        assert_eq!(decode(&encode(&t)).unwrap(), t);
        let unit = SolutionTable::unit();
        let rt = decode(&encode(&unit)).unwrap();
        assert_eq!(rt.len(), 1);
    }

    #[test]
    fn malformed_rejected() {
        assert!(decode("?a\n<unterminated\n").is_none());
        assert!(decode("?a\tb?\nonly-one-field-without-term-syntax\n").is_none());
    }
}
