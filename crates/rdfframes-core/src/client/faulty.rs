//! A fault-injecting [`Endpoint`] decorator for chaos testing.
//!
//! [`FaultyEndpoint`] wraps any endpoint and perturbs its
//! [`Endpoint::query_chunk`] responses according to a deterministic plan:
//! either a **script** (an explicit per-request fault list, so a test can
//! say "request 2 fails transiently, request 5 drifts its schema") or a
//! **seeded** random process (every request draws from an
//! [`rand::rngs::StdRng`], so a whole chaos run replays from one `u64`).
//!
//! Faults model what the paper's SPARQL-over-HTTP setup can actually do to
//! a client mid-pagination:
//!
//! - [`Fault::Transient`] — the request never reaches the server
//!   (connection refused/reset). Retryable; the server does no work.
//! - [`Fault::TruncatedChunk`] — the server answers but the response body
//!   is cut off, so result decoding fails. Retryable; the server *did*
//!   serve the request. Surfacing this as an error (instead of silently
//!   returning the rows that survived) is load-bearing: a paginating
//!   client interprets a short chunk as "pagination done", so a silently
//!   truncated chunk would end the scan early and drop every later row.
//! - [`Fault::SchemaDrift`] — the chunk decodes but its header disagrees
//!   with earlier chunks (a proxy cache serving a stale or foreign
//!   response). The decorator renames the first column; the client notices
//!   on append. Retryable by re-requesting the chunk.
//! - [`Fault::Slow`] — the response is served intact but late.
//! - [`Fault::Fatal`] — the server rejects the query outright. Not
//!   retryable; retry loops must give up immediately.
//!
//! The decorator never fabricates result rows: a request either fails, is
//! delayed, or returns the wrapped endpoint's genuine answer (possibly with
//! a renamed header). [`Endpoint::execute_model`] is deliberately *not*
//! forwarded, so an `Executor` driving a wrapped [`EmbeddedEndpoint`] still
//! exercises the wire path the faults are designed for.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sparql_engine::SolutionTable;

use crate::client::Endpoint;
use crate::error::{FrameError, Result};

/// One injected failure mode (see the module docs for semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Request fails before reaching the server. Retryable.
    Transient,
    /// Response body cut off mid-transfer; decoding fails. Retryable.
    TruncatedChunk,
    /// Chunk arrives with a drifted header (first column renamed).
    /// Retryable on re-request.
    SchemaDrift,
    /// Response delayed by this much, then served intact.
    Slow(Duration),
    /// Server rejects the query. Not retryable.
    Fatal,
}

/// Deterministic fault source: an explicit script, then (optionally) a
/// seeded random drip.
struct FaultPlan {
    /// Per-request faults, consumed front to back (`None` = serve clean).
    /// Requests past the end of the script fall through to `rng`.
    script: VecDeque<Option<Fault>>,
    /// Seeded generator for open-ended chaos runs (`None` = clean once the
    /// script runs out).
    rng: Option<(StdRng, f64)>,
}

impl FaultPlan {
    /// The fault (if any) to inject for the next request.
    fn next_fault(&mut self) -> Option<Fault> {
        if let Some(entry) = self.script.pop_front() {
            return entry;
        }
        let (rng, rate) = self.rng.as_mut()?;
        if !rng.gen_bool(*rate) {
            return None;
        }
        // Only retryable *delivery* faults are drawn at random: a random
        // `Fatal` would make seeded runs useless for retry-parity testing,
        // `Slow` needs an explicit duration, and `SchemaDrift` is
        // script-only — whether a client can even detect drift depends on
        // the request's position (on the first chunk there is no reference
        // header yet), so dropping it at a random position would test the
        // protocol's blind spot, not the retry logic.
        Some(match rng.gen_range(0..2u32) {
            0 => Fault::Transient,
            _ => Fault::TruncatedChunk,
        })
    }
}

/// An [`Endpoint`] decorator that injects scripted or seeded faults into
/// `query_chunk` responses.
pub struct FaultyEndpoint<E> {
    inner: E,
    plan: Mutex<FaultPlan>,
    injected: AtomicU64,
}

impl<E: Endpoint> FaultyEndpoint<E> {
    /// Inject exactly `script[i]` on the i-th request (`None` = clean);
    /// requests beyond the script are served clean.
    pub fn scripted(inner: E, script: Vec<Option<Fault>>) -> Self {
        FaultyEndpoint {
            inner,
            plan: Mutex::new(FaultPlan {
                script: script.into(),
                rng: None,
            }),
            injected: AtomicU64::new(0),
        }
    }

    /// Inject a random retryable fault on each request with probability
    /// `fault_rate`, deterministically from `seed`.
    pub fn seeded(inner: E, seed: u64, fault_rate: f64) -> Self {
        FaultyEndpoint {
            inner,
            plan: Mutex::new(FaultPlan {
                script: VecDeque::new(),
                rng: Some((StdRng::seed_from_u64(seed), fault_rate)),
            }),
            injected: AtomicU64::new(0),
        }
    }

    /// The wrapped endpoint.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// Faults injected so far.
    pub fn faults_injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }
}

impl<E: Endpoint> Endpoint for FaultyEndpoint<E> {
    fn query_chunk(&self, sparql: &str, offset: usize, limit: usize) -> Result<SolutionTable> {
        // Decide the fault before touching the inner endpoint and drop the
        // lock: the inner call may sleep (request overhead) and must not
        // serialize concurrent chaos runs.
        let fault = self.plan.lock().expect("fault plan poisoned").next_fault();
        if fault.is_some() {
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        match fault {
            None => self.inner.query_chunk(sparql, offset, limit),
            Some(Fault::Transient) => Err(FrameError::Transport(
                "injected fault: connection reset before request".into(),
            )),
            Some(Fault::TruncatedChunk) => {
                // The server served the chunk (its stats move) but the body
                // never fully arrived.
                let _ = self.inner.query_chunk(sparql, offset, limit)?;
                Err(FrameError::Transport(
                    "injected fault: response body truncated mid-transfer".into(),
                ))
            }
            Some(Fault::SchemaDrift) => {
                let mut table = self.inner.query_chunk(sparql, offset, limit)?;
                if let Some(first) = table.vars.first_mut() {
                    first.push_str("_drift");
                }
                Ok(table)
            }
            Some(Fault::Slow(delay)) => {
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
                self.inner.query_chunk(sparql, offset, limit)
            }
            Some(Fault::Fatal) => Err(FrameError::Endpoint(
                "injected fault: server rejected the query".into(),
            )),
        }
    }

    fn max_rows_per_request(&self) -> usize {
        self.inner.max_rows_per_request()
    }

    // `execute_model` intentionally not forwarded: faults target the wire
    // path, so the decorator forces the Executor onto it.
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::InProcessEndpoint;
    use rdf_model::{Dataset, Graph, Term, Triple};
    use std::sync::Arc;

    fn endpoint() -> InProcessEndpoint {
        let mut g = Graph::new();
        for i in 0..6 {
            g.insert(&Triple::new(
                Term::iri(format!("http://x/s{i}")),
                Term::iri("http://x/p"),
                Term::integer(i),
            ));
        }
        let mut ds = Dataset::new();
        ds.insert_graph("http://g", g);
        InProcessEndpoint::new(Arc::new(ds))
    }

    const Q: &str = "SELECT ?s ?o FROM <http://g> WHERE { ?s <http://x/p> ?o } ORDER BY ?o";

    #[test]
    fn script_drives_faults_per_request() {
        let ep = FaultyEndpoint::scripted(
            endpoint(),
            vec![Some(Fault::Transient), None, Some(Fault::Fatal)],
        );
        assert!(matches!(
            ep.query_chunk(Q, 0, 10),
            Err(FrameError::Transport(_))
        ));
        assert_eq!(ep.query_chunk(Q, 0, 10).unwrap().len(), 6);
        assert!(matches!(
            ep.query_chunk(Q, 0, 10),
            Err(FrameError::Endpoint(_))
        ));
        // Past the script: clean.
        assert_eq!(ep.query_chunk(Q, 0, 10).unwrap().len(), 6);
        assert_eq!(ep.faults_injected(), 2);
    }

    #[test]
    fn schema_drift_renames_header_but_keeps_rows() {
        let ep = FaultyEndpoint::scripted(endpoint(), vec![Some(Fault::SchemaDrift)]);
        let drifted = ep.query_chunk(Q, 0, 10).unwrap();
        assert_eq!(drifted.vars, vec!["s_drift", "o"]);
        let clean = ep.query_chunk(Q, 0, 10).unwrap();
        assert_eq!(clean.vars, vec!["s", "o"]);
        assert_eq!(drifted.rows, clean.rows);
    }

    #[test]
    fn truncation_reaches_the_server_then_fails() {
        let ep = FaultyEndpoint::scripted(endpoint(), vec![Some(Fault::TruncatedChunk)]);
        assert!(matches!(
            ep.query_chunk(Q, 0, 10),
            Err(FrameError::Transport(_))
        ));
        // The inner endpoint served (and accounted) the request.
        assert_eq!(ep.inner().stats().requests(), 1);
    }

    #[test]
    fn seeded_faults_replay_identically() {
        let run = |seed| {
            let ep = FaultyEndpoint::seeded(endpoint(), seed, 0.5);
            (0..10)
                .map(|_| ep.query_chunk(Q, 0, 10).is_ok())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds should diverge");
    }
}
