//! The Executor: frame out, dataframe in (paper Figure 1, right side).
//!
//! The executor builds the frame's query model once, then picks one of two
//! execution paths per endpoint:
//!
//! - **embedded** — the endpoint implements
//!   [`Endpoint::execute_model`] (see
//!   [`EmbeddedEndpoint`](crate::client::EmbeddedEndpoint)): the model
//!   compiles straight into the engine's plan algebra and the result comes
//!   back as typed columns. No SPARQL text, no pagination, no wire format.
//! - **wire** — everything else: render the model to SPARQL and do the
//!   mechanics the paper lists in Section 4.3 — send the text, paginate
//!   transparently (re-requesting chunk by chunk, since the SPARQL protocol
//!   over HTTP has no cursors), and assemble one dataframe from all chunks.
//!
//! The wire path is where faults live (each chunk is a separate request
//! over an unreliable transport), so the executor owns the client half of
//! the failure story: a [`RetryPolicy`] re-requests chunks that failed
//! *in delivery* (transport faults — the protocol's re-execution-per-chunk
//! contract makes retries idempotent), and [`Executor::run_partial`]
//! reports the rows assembled before an unrecoverable failure instead of
//! discarding them, tagged with a [`Completeness`] marker.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use dataframe::DataFrame;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::api::rdfframe::RDFFrame;
use crate::client::convert::{append_table, table_to_dataframe};
use crate::client::Endpoint;
use crate::error::{FrameError, Result};
use crate::model::{generator, render};

/// When (and how hard) the executor retries a failed chunk request.
///
/// Backoff is exponential with deterministic jitter: attempt *k* (1-based)
/// sleeps `base_backoff · backoff_multiplier^(k-1)`, capped at
/// `max_backoff`, scaled by a jitter factor in `[0.5, 1.0)` drawn from a
/// [`StdRng`] seeded with `jitter_seed` — two runs with the same policy
/// sleep identically, so chaos tests replay bit-for-bit.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts per chunk, including the first (1 = never retry).
    pub max_attempts: u32,
    /// Sleep before the first retry.
    pub base_backoff: Duration,
    /// Growth factor per further retry.
    pub backoff_multiplier: f64,
    /// Upper bound on any single sleep.
    pub max_backoff: Duration,
    /// Seed for the jitter generator.
    pub jitter_seed: u64,
    /// Which errors are worth retrying. Defaults to
    /// [`FrameError::is_retryable`] (transport faults only); fatal query
    /// errors and budget trips always surface immediately.
    pub retry_on: fn(&FrameError) -> bool,
}

impl RetryPolicy {
    /// Never retry (the default — failures surface immediately, exactly
    /// like the pre-retry executor).
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
            backoff_multiplier: 2.0,
            max_backoff: Duration::ZERO,
            jitter_seed: 0,
            retry_on: FrameError::is_retryable,
        }
    }

    /// A production-shaped policy: 3 attempts, 10 ms base backoff doubling
    /// per retry, capped at 100 ms.
    pub fn standard() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(10),
            backoff_multiplier: 2.0,
            max_backoff: Duration::from_millis(100),
            jitter_seed: 0,
            retry_on: FrameError::is_retryable,
        }
    }

    /// `standard()` with zero sleeps — full retry control flow at unit-test
    /// speed.
    pub fn fast(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            ..RetryPolicy::standard()
        }
    }

    /// The sleep before retry number `retry` (1-based), jittered.
    fn backoff(&self, retry: u32, rng: &mut StdRng) -> Duration {
        if self.base_backoff.is_zero() {
            return Duration::ZERO;
        }
        let exp = self.backoff_multiplier.powi(retry.saturating_sub(1) as i32);
        let raw = self.base_backoff.as_secs_f64() * exp;
        let capped = raw.min(self.max_backoff.as_secs_f64().max(0.0));
        let jitter = 0.5 + rng.gen::<f64>() * 0.5;
        Duration::from_secs_f64(capped * jitter)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

/// Did [`Executor::run_partial`] assemble the whole result?
#[derive(Debug, Clone, PartialEq)]
pub enum Completeness {
    /// Every chunk arrived; the frame is the full result.
    Complete,
    /// Pagination failed past the retry budget; the frame holds the intact
    /// prefix assembled before this error. The failed chunk contributed
    /// nothing (chunk appends are atomic).
    Partial {
        /// The unrecoverable error that ended pagination.
        error: FrameError,
    },
}

impl Completeness {
    /// True for [`Completeness::Complete`].
    pub fn is_complete(&self) -> bool {
        matches!(self, Completeness::Complete)
    }
}

/// A possibly-prefix result: the assembled rows plus how far they got.
#[derive(Debug, Clone, PartialEq)]
pub struct PartialFrame {
    /// The rows assembled (all of them, or an intact prefix).
    pub frame: DataFrame,
    /// Whether `frame` is the whole result.
    pub completeness: Completeness,
}

/// Cumulative retry observability counters for an [`Executor`].
///
/// Counters are atomic and shared: cloning an executor clones the `Arc`,
/// so clones report into the same stats — the natural reading when one
/// configured executor is reused across queries.
#[derive(Debug, Default)]
pub struct ExecutorStats {
    retries: AtomicU64,
    backoff_nanos: AtomicU64,
}

impl ExecutorStats {
    /// Total chunk re-requests issued (first attempts are not retries).
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Total time spent sleeping in backoff between attempts.
    pub fn backoff_total(&self) -> Duration {
        Duration::from_nanos(self.backoff_nanos.load(Ordering::Relaxed))
    }
}

/// Executes frames against endpoints with transparent pagination.
#[derive(Debug, Clone, Default)]
pub struct Executor {
    /// Client-side page size; the effective page is
    /// `min(page_size, endpoint.max_rows_per_request())`.
    pub page_size: Option<usize>,
    /// Chunk-level retry policy (default: no retries).
    pub retry: RetryPolicy,
    /// Cumulative cap on rows assembled across wire chunks: once the
    /// assembled frame reaches this many rows, pagination stops and the
    /// intact prefix comes back as [`Completeness::Partial`] — bounded
    /// work instead of an unbounded result. `None` = assemble everything.
    pub wire_row_cap: Option<u64>,
    /// Cumulative wall-clock deadline across wire chunks, measured from
    /// the start of [`Executor::run_partial`]. Unlike an engine budget
    /// deadline (which restarts at every chunk's evaluation), this spans
    /// the whole paginated query: when it expires between chunks the
    /// intact prefix comes back as [`Completeness::Partial`].
    pub wire_deadline: Option<Duration>,
    /// Retry observability counters (shared across clones).
    stats: Arc<ExecutorStats>,
}

impl Executor {
    /// Executor with default paging.
    pub fn new() -> Self {
        Executor::default()
    }

    /// Executor with an explicit client page size.
    pub fn with_page_size(page_size: usize) -> Self {
        Executor {
            page_size: Some(page_size),
            ..Executor::default()
        }
    }

    /// This executor with a retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// This executor with a cumulative cross-chunk row cap (degraded
    /// service: [`Executor::run_partial`] stops at the cap and returns the
    /// intact prefix as [`Completeness::Partial`]).
    pub fn with_wire_row_cap(mut self, cap: u64) -> Self {
        self.wire_row_cap = Some(cap);
        self
    }

    /// This executor with a cumulative cross-chunk wall-clock deadline
    /// (degraded service: [`Executor::run_partial`] stops paginating when
    /// it expires and returns the intact prefix as
    /// [`Completeness::Partial`]).
    pub fn with_wire_deadline(mut self, deadline: Duration) -> Self {
        self.wire_deadline = Some(deadline);
        self
    }

    /// Retry observability counters: how many chunk re-requests this
    /// executor (and its clones) issued, and how long they backed off.
    pub fn stats(&self) -> &Arc<ExecutorStats> {
        &self.stats
    }

    /// Execute the frame's optimized query, picking the embedded path when
    /// the endpoint offers one and the wire path otherwise.
    pub fn execute<E: Endpoint + ?Sized>(
        &self,
        frame: &RDFFrame,
        endpoint: &E,
    ) -> Result<DataFrame> {
        let model = generator::build_query_model(frame)?;
        if let Some(result) = endpoint.execute_model(&model) {
            return result;
        }
        let sparql = render::render(&model);
        self.run(&sparql, endpoint)
    }

    /// Execute the frame's naive query (baseline).
    pub fn execute_naive<E: Endpoint + ?Sized>(
        &self,
        frame: &RDFFrame,
        endpoint: &E,
    ) -> Result<DataFrame> {
        let sparql = frame.try_to_naive_sparql()?;
        self.run(&sparql, endpoint)
    }

    /// Run raw SPARQL with pagination and assemble one dataframe.
    ///
    /// All-or-nothing surface over [`Executor::run_partial`]: an
    /// unrecoverable failure discards the assembled prefix and returns the
    /// error.
    pub fn run<E: Endpoint + ?Sized>(&self, sparql: &str, endpoint: &E) -> Result<DataFrame> {
        let partial = self.run_partial(sparql, endpoint)?;
        match partial.completeness {
            Completeness::Complete => Ok(partial.frame),
            Completeness::Partial { error } => Err(error),
        }
    }

    /// Run raw SPARQL with pagination, retrying faulted chunks per the
    /// retry policy, and keep whatever prefix was assembled if a chunk
    /// fails past the retry budget.
    ///
    /// Returns `Err` only for failures that produce *no* rows to keep (the
    /// first chunk never arrived). Once at least one chunk is merged, a
    /// later unrecoverable failure comes back as
    /// [`Completeness::Partial`] with the intact prefix — chunk appends
    /// are atomic, so the prefix never contains part of a damaged chunk.
    pub fn run_partial<E: Endpoint + ?Sized>(
        &self,
        sparql: &str,
        endpoint: &E,
    ) -> Result<PartialFrame> {
        let page = self
            .page_size
            .unwrap_or(usize::MAX)
            .min(endpoint.max_rows_per_request())
            .max(1);
        let start = std::time::Instant::now();
        let mut rng = StdRng::seed_from_u64(self.retry.jitter_seed);

        // First chunk: nothing assembled yet, so an unrecoverable failure
        // here is a plain error.
        let first = self.chunk_with_retry(endpoint, sparql, 0, page, &mut rng)?;
        let short = first.len() < page;
        let mut df = table_to_dataframe(&first)?;
        if short {
            return Ok(PartialFrame {
                frame: df,
                completeness: Completeness::Complete,
            });
        }

        let mut offset = 0usize;
        loop {
            // Graceful degradation between chunks: the prefix assembled so
            // far is intact and atomic, so a cumulative limit stops here
            // and keeps it rather than discarding work already paid for.
            if let Some(stop) = self.degrade_between_chunks(&df, start) {
                return Ok(PartialFrame {
                    frame: df,
                    completeness: Completeness::Partial { error: stop },
                });
            }
            offset += page;
            // Fetch *and append* under one retry budget: schema drift only
            // shows when the chunk's header meets the accumulated frame's,
            // and re-requesting the chunk is the fix for that too.
            let mut tries = 0u32;
            let appended = loop {
                tries += 1;
                let outcome = endpoint
                    .query_chunk(sparql, offset, page)
                    .and_then(|chunk| append_table(&mut df, &chunk).map(|()| chunk.len()));
                match outcome {
                    Ok(n) => break n,
                    Err(e)
                        if tries < self.retry.max_attempts.max(1) && (self.retry.retry_on)(&e) =>
                    {
                        self.stats.retries.fetch_add(1, Ordering::Relaxed);
                        self.sleep_backoff(tries, &mut rng)
                    }
                    Err(error) => {
                        return Ok(PartialFrame {
                            frame: df,
                            completeness: Completeness::Partial { error },
                        })
                    }
                }
            };
            if appended < page {
                return Ok(PartialFrame {
                    frame: df,
                    completeness: Completeness::Complete,
                });
            }
        }
    }

    /// The cumulative cross-chunk limit tripped by the pagination state so
    /// far, if any. Checked only between chunks, so a short first chunk
    /// (already a complete result) is never downgraded.
    fn degrade_between_chunks(
        &self,
        df: &DataFrame,
        start: std::time::Instant,
    ) -> Option<FrameError> {
        if let Some(cap) = self.wire_row_cap {
            if df.len() as u64 >= cap {
                return Some(FrameError::ResourceExhausted(format!(
                    "wire row cap: {} rows assembled (cap {cap})",
                    df.len()
                )));
            }
        }
        if let Some(deadline) = self.wire_deadline {
            if start.elapsed() >= deadline {
                return Some(FrameError::ResourceExhausted(format!(
                    "deadline (ms): pagination exceeded {} ms",
                    deadline.as_millis()
                )));
            }
        }
        None
    }

    /// One chunk request under the retry policy (no append).
    fn chunk_with_retry<E: Endpoint + ?Sized>(
        &self,
        endpoint: &E,
        sparql: &str,
        offset: usize,
        page: usize,
        rng: &mut StdRng,
    ) -> Result<sparql_engine::SolutionTable> {
        let mut tries = 0u32;
        loop {
            tries += 1;
            match endpoint.query_chunk(sparql, offset, page) {
                Ok(t) => return Ok(t),
                Err(e) if tries < self.retry.max_attempts.max(1) && (self.retry.retry_on)(&e) => {
                    self.stats.retries.fetch_add(1, Ordering::Relaxed);
                    self.sleep_backoff(tries, rng)
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Sleep the jittered backoff before retry number `retry` (1-based).
    fn sleep_backoff(&self, retry: u32, rng: &mut StdRng) {
        let d = self.retry.backoff(retry, rng);
        self.stats
            .backoff_nanos
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
        if !d.is_zero() {
            std::thread::sleep(d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::KnowledgeGraph;
    use crate::client::{EndpointConfig, InProcessEndpoint};
    use rdf_model::{Dataset, Graph, Term, Triple};
    use std::sync::Arc;

    fn endpoint(max_rows: usize) -> InProcessEndpoint {
        let mut g = Graph::new();
        for i in 0..25 {
            g.insert(&Triple::new(
                Term::iri(format!("http://x/movie{i}")),
                Term::iri("http://x/starring"),
                Term::iri(format!("http://x/actor{}", i % 5)),
            ));
        }
        let mut ds = Dataset::new();
        ds.insert_graph("http://g", g);
        InProcessEndpoint::with_config(
            Arc::new(ds),
            EndpointConfig {
                max_rows_per_request: max_rows,
                ..Default::default()
            },
        )
    }

    fn frame() -> crate::api::RDFFrame {
        KnowledgeGraph::new("http://g")
            .with_prefix("x", "http://x/")
            .feature_domain_range("x:starring", "movie", "actor")
    }

    #[test]
    fn single_page_when_results_fit() {
        let ep = endpoint(1000);
        let df = frame().execute(&ep).unwrap();
        assert_eq!(df.len(), 25);
        assert_eq!(ep.stats().requests(), 1);
    }

    #[test]
    fn pagination_requests_until_short_chunk() {
        let ep = endpoint(10);
        let df = frame().execute(&ep).unwrap();
        assert_eq!(df.len(), 25);
        // 10 + 10 + 5 → three requests.
        assert_eq!(ep.stats().requests(), 3);
        assert_eq!(ep.stats().rows_returned(), 25);
    }

    #[test]
    fn exact_multiple_needs_probe_request() {
        let ep = endpoint(5);
        let df = frame().execute(&ep).unwrap();
        assert_eq!(df.len(), 25);
        // 5 full chunks + 1 empty probe.
        assert_eq!(ep.stats().requests(), 6);
    }

    #[test]
    fn page_size_override() {
        let ep = endpoint(1000);
        let df = Executor::with_page_size(7).execute(&frame(), &ep).unwrap();
        assert_eq!(df.len(), 25);
        assert_eq!(ep.stats().requests(), 4);
    }

    #[test]
    fn stats_count_retries_and_backoff() {
        use crate::client::{Fault, FaultyEndpoint};
        let ep = FaultyEndpoint::scripted(
            endpoint(10),
            vec![Some(Fault::Transient), None, Some(Fault::Transient), None],
        );
        let exec = Executor::new().with_retry(RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_micros(200),
            max_backoff: Duration::from_micros(400),
            ..RetryPolicy::standard()
        });
        let df = exec.execute(&frame(), &ep).unwrap();
        assert_eq!(df.len(), 25);
        assert_eq!(exec.stats().retries(), ep.faults_injected());
        assert_eq!(exec.stats().retries(), 2);
        assert!(exec.stats().backoff_total() > Duration::ZERO);
        // Clones share the counters.
        assert_eq!(exec.clone().stats().retries(), 2);
    }

    #[test]
    fn stats_stay_zero_on_clean_runs() {
        let ep = endpoint(10);
        let exec = Executor::new().with_retry(RetryPolicy::standard());
        exec.execute(&frame(), &ep).unwrap();
        assert_eq!(exec.stats().retries(), 0);
        assert_eq!(exec.stats().backoff_total(), Duration::ZERO);
    }

    #[test]
    fn grouped_query_roundtrip() {
        let ep = endpoint(1000);
        let df = frame()
            .group_by(&["actor"])
            .count("movie", "n", true)
            .execute(&ep)
            .unwrap();
        assert_eq!(df.len(), 5);
        for row in df.rows() {
            assert_eq!(row[1], dataframe::Cell::Int(5));
        }
    }
}
