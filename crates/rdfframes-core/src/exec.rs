//! The Executor: frame out, dataframe in (paper Figure 1, right side).
//!
//! The executor builds the frame's query model once, then picks one of two
//! execution paths per endpoint:
//!
//! - **embedded** — the endpoint implements
//!   [`Endpoint::execute_model`] (see
//!   [`EmbeddedEndpoint`](crate::client::EmbeddedEndpoint)): the model
//!   compiles straight into the engine's plan algebra and the result comes
//!   back as typed columns. No SPARQL text, no pagination, no wire format.
//! - **wire** — everything else: render the model to SPARQL and do the
//!   mechanics the paper lists in Section 4.3 — send the text, paginate
//!   transparently (re-requesting chunk by chunk, since the SPARQL protocol
//!   over HTTP has no cursors), and assemble one dataframe from all chunks.

use dataframe::DataFrame;

use crate::api::rdfframe::RDFFrame;
use crate::client::convert::{append_table, table_to_dataframe};
use crate::client::Endpoint;
use crate::error::{FrameError, Result};
use crate::model::{generator, render};

/// Executes frames against endpoints with transparent pagination.
#[derive(Debug, Clone, Default)]
pub struct Executor {
    /// Client-side page size; the effective page is
    /// `min(page_size, endpoint.max_rows_per_request())`.
    pub page_size: Option<usize>,
}

impl Executor {
    /// Executor with default paging.
    pub fn new() -> Self {
        Executor::default()
    }

    /// Executor with an explicit client page size.
    pub fn with_page_size(page_size: usize) -> Self {
        Executor {
            page_size: Some(page_size),
        }
    }

    /// Execute the frame's optimized query, picking the embedded path when
    /// the endpoint offers one and the wire path otherwise.
    pub fn execute<E: Endpoint + ?Sized>(
        &self,
        frame: &RDFFrame,
        endpoint: &E,
    ) -> Result<DataFrame> {
        let model = generator::build_query_model(frame)?;
        if let Some(result) = endpoint.execute_model(&model) {
            return result;
        }
        let sparql = render::render(&model);
        self.run(&sparql, endpoint)
    }

    /// Execute the frame's naive query (baseline).
    pub fn execute_naive<E: Endpoint + ?Sized>(
        &self,
        frame: &RDFFrame,
        endpoint: &E,
    ) -> Result<DataFrame> {
        let sparql = frame.try_to_naive_sparql()?;
        self.run(&sparql, endpoint)
    }

    /// Run raw SPARQL with pagination and assemble one dataframe.
    pub fn run<E: Endpoint + ?Sized>(&self, sparql: &str, endpoint: &E) -> Result<DataFrame> {
        let page = self
            .page_size
            .unwrap_or(usize::MAX)
            .min(endpoint.max_rows_per_request())
            .max(1);
        let mut offset = 0usize;
        let first = endpoint.query_chunk(sparql, offset, page)?;
        let short = first.len() < page;
        let mut df = table_to_dataframe(&first);
        if short {
            return Ok(df);
        }
        loop {
            offset += page;
            let chunk = endpoint.query_chunk(sparql, offset, page)?;
            let done = chunk.len() < page;
            if !append_table(&mut df, &chunk) {
                return Err(FrameError::Endpoint(
                    "endpoint returned inconsistent schemas across chunks".into(),
                ));
            }
            if done {
                return Ok(df);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::KnowledgeGraph;
    use crate::client::{EndpointConfig, InProcessEndpoint};
    use rdf_model::{Dataset, Graph, Term, Triple};
    use std::sync::Arc;

    fn endpoint(max_rows: usize) -> InProcessEndpoint {
        let mut g = Graph::new();
        for i in 0..25 {
            g.insert(&Triple::new(
                Term::iri(format!("http://x/movie{i}")),
                Term::iri("http://x/starring"),
                Term::iri(format!("http://x/actor{}", i % 5)),
            ));
        }
        let mut ds = Dataset::new();
        ds.insert_graph("http://g", g);
        InProcessEndpoint::with_config(
            Arc::new(ds),
            EndpointConfig {
                max_rows_per_request: max_rows,
                ..Default::default()
            },
        )
    }

    fn frame() -> crate::api::RDFFrame {
        KnowledgeGraph::new("http://g")
            .with_prefix("x", "http://x/")
            .feature_domain_range("x:starring", "movie", "actor")
    }

    #[test]
    fn single_page_when_results_fit() {
        let ep = endpoint(1000);
        let df = frame().execute(&ep).unwrap();
        assert_eq!(df.len(), 25);
        assert_eq!(ep.stats().requests(), 1);
    }

    #[test]
    fn pagination_requests_until_short_chunk() {
        let ep = endpoint(10);
        let df = frame().execute(&ep).unwrap();
        assert_eq!(df.len(), 25);
        // 10 + 10 + 5 → three requests.
        assert_eq!(ep.stats().requests(), 3);
        assert_eq!(ep.stats().rows_returned(), 25);
    }

    #[test]
    fn exact_multiple_needs_probe_request() {
        let ep = endpoint(5);
        let df = frame().execute(&ep).unwrap();
        assert_eq!(df.len(), 25);
        // 5 full chunks + 1 empty probe.
        assert_eq!(ep.stats().requests(), 6);
    }

    #[test]
    fn page_size_override() {
        let ep = endpoint(1000);
        let df = Executor::with_page_size(7).execute(&frame(), &ep).unwrap();
        assert_eq!(df.len(), 25);
        assert_eq!(ep.stats().requests(), 4);
    }

    #[test]
    fn grouped_query_roundtrip() {
        let ep = endpoint(1000);
        let df = frame()
            .group_by(&["actor"])
            .count("movie", "n", true)
            .execute(&ep)
            .unwrap();
        assert_eq!(df.len(), 5);
        for row in df.rows() {
            assert_eq!(row[1], dataframe::Cell::Int(5));
        }
    }
}
