//! RDFFrames: a dataframe-to-SPARQL compiler for knowledge-graph access.
//!
//! This crate is the Rust reproduction of the system described in
//! *"RDFFrames: Knowledge Graph Access for Machine Learning Tools"* (VLDB
//! 2020). It provides:
//!
//! - **The user API** ([`api`]): a lazy, imperative, navigational interface —
//!   [`KnowledgeGraph`] initializers (`seed`, `entities`,
//!   `feature_domain_range`), navigational [`RDFFrame::expand`], and
//!   relational operators (`filter`, `select_cols`, `join`, `group_by` with
//!   aggregation, `sort`, `head`). Calls are *recorded*, not executed
//!   (the paper's Recorder).
//! - **The query model** ([`model`]): the nested intermediate representation
//!   of Figure 2, generated from the operator queue by the Generator with
//!   the paper's three nesting rules, then rendered to a single compact
//!   SPARQL query by the Translator. A naive per-operator translator is
//!   included as the evaluation baseline.
//! - **The executor** ([`exec`]): sends the SPARQL to an [`Endpoint`]
//!   (an in-process engine standing in for Virtuoso-over-HTTP), handles
//!   pagination transparently, and assembles a [`dataframe::DataFrame`].
//!
//! ```
//! use rdfframes_core::api::KnowledgeGraph;
//!
//! let graph = KnowledgeGraph::new("http://dbpedia.org")
//!     .with_prefix("dbpp", "http://dbpedia.org/property/")
//!     .with_prefix("dbpr", "http://dbpedia.org/resource/");
//! let movies = graph.feature_domain_range("dbpp:starring", "movie", "actor");
//! let prolific = movies
//!     .expand("actor", "dbpp:birthPlace", "country")
//!     .filter("country", &["=dbpr:United_States"])
//!     .group_by(&["actor"])
//!     .count("movie", "movie_count", true)
//!     .filter("movie_count", &[">=50"]);
//! let sparql = prolific.to_sparql();
//! assert!(sparql.contains("GROUP BY ?actor"));
//! assert!(sparql.contains("HAVING"));
//! ```

pub mod api;
pub mod client;
pub mod error;
pub mod exec;
pub mod model;
pub mod reference;

pub use api::{AggFunc, Direction, JoinType, KnowledgeGraph, RDFFrame, SortOrder};
pub use client::{
    AdmissionGovernor, AdmissionPermit, DurableSnapshotServer, EmbeddedEndpoint, Endpoint,
    EndpointConfig, EndpointStats, EpochEndpoints, Fault, FaultyEndpoint, InProcessEndpoint,
    QueryClass, ServerStats, ServingConfig, SnapshotServer, WireFormat,
};
pub use error::{FrameError, Result};
pub use exec::{Completeness, Executor, ExecutorStats, PartialFrame, RetryPolicy};
