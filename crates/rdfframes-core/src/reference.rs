//! Reference interpreter: direct evaluation of an RDFFrame's operator queue
//! over an in-memory graph, following the operator semantics of the paper's
//! Section 3 (with SPARQL-compatible mapping semantics for joins — unbound
//! is compatible with anything, per Section 5.2).
//!
//! This is the *oracle* for the semantic-correctness tests (Theorem 1): the
//! dataframe RDFFrames produces by compiling to SPARQL and executing on the
//! engine must equal the dataframe this interpreter produces by executing
//! the operators one by one.

use dataframe::{Cell, DataFrame};
use rdf_model::{Dataset, Graph, Term};
use sparql_engine::regex_lite::Regex;

use crate::api::conditions::{CmpOp, Condition, Value};
use crate::api::operators::{AggFunc, Direction, JoinType, Node, Operator};
use crate::api::rdfframe::RDFFrame;
use crate::client::convert::term_to_cell;
use crate::error::{FrameError, Result};

/// Evaluate a frame directly (no SPARQL) against a dataset.
pub fn evaluate_reference(frame: &RDFFrame, dataset: &Dataset) -> Result<DataFrame> {
    let resolver = DatasetResolver::new(dataset);
    resolver.resolve_frame(frame)
}

fn resolve_term(frame: &RDFFrame, written: &str) -> Result<Term> {
    let s = written.trim();
    if let Some(body) = s.strip_prefix('"').and_then(|x| x.strip_suffix('"')) {
        return Ok(Term::string(body.to_string()));
    }
    if let Ok(i) = s.parse::<i64>() {
        return Ok(Term::integer(i));
    }
    let iri = frame
        .graph()
        .prefixes()
        .expand(s)
        .map_err(|e| FrameError::Prefix(e.to_string()))?;
    Ok(Term::iri(iri))
}

/// Evaluate one triple pattern into a dataframe of its variable columns.
pub fn pattern_frame(
    frame: &RDFFrame,
    graph: &Graph,
    subject: &Node,
    predicate: &Node,
    object: &Node,
) -> Result<DataFrame> {
    let mut columns: Vec<String> = Vec::new();
    for n in [subject, predicate, object] {
        if let Node::Var(v) = n {
            if !columns.contains(v) {
                columns.push(v.clone());
            }
        }
    }
    let resolve = |n: &Node| -> Result<Option<Term>> {
        match n {
            Node::Var(_) => Ok(None),
            Node::Term(t) => Ok(Some(resolve_term(frame, t)?)),
        }
    };
    let (cs, cp, co) = (resolve(subject)?, resolve(predicate)?, resolve(object)?);
    let ids = |t: &Option<Term>| t.as_ref().map(|t| graph.term_id(t));
    // A constant absent from the graph matches nothing.
    let (is_, ip, io) = (ids(&cs), ids(&cp), ids(&co));
    let mut df = DataFrame::new(columns.clone());
    if matches!(is_, Some(None)) || matches!(ip, Some(None)) || matches!(io, Some(None)) {
        return Ok(df);
    }
    for (s, p, o) in graph.match_pattern(is_.flatten(), ip.flatten(), io.flatten()) {
        let mut row: Vec<Option<Cell>> = vec![None; columns.len()];
        let mut ok = true;
        for (n, id) in [(subject, s), (predicate, p), (object, o)] {
            if let Node::Var(v) = n {
                let idx = columns.iter().position(|c| c == v).expect("column");
                let cell = term_to_cell(graph.term(id));
                match &row[idx] {
                    Some(existing) => ok &= *existing == cell,
                    None => row[idx] = Some(cell),
                }
            }
        }
        if ok {
            df.push_row(row.into_iter().map(|c| c.expect("var bound")).collect());
        }
    }
    Ok(df)
}

/// SPARQL-compatible join (unbound/null compatible with anything), joining
/// on *all* shared columns — the dataframe-side equivalent of merging graph
/// patterns. Used by the client-side baselines in the evaluation.
///
/// `Outer` follows the *paper's* definition (Section 4.2): D1 ⟗ D2 is the
/// bag union of (D1 ⟕ D2) and (D2 ⟕ D1), which is what the generated
/// UNION-of-two-OPTIONALs SPARQL computes. Under bag semantics this yields
/// matched rows twice (once per branch) — a deliberate fidelity choice so
/// the oracle matches the system being reproduced.
pub fn compat_join(left: &DataFrame, right: &DataFrame, how: JoinType) -> DataFrame {
    if matches!(how, JoinType::Outer) {
        let b1 = compat_join(left, right, JoinType::Left);
        let b2 = compat_join(right, left, JoinType::Left);
        return b1.concat(&b2);
    }
    if matches!(how, JoinType::Right) {
        // D1 ⟖ D2 = D2 ⟕ D1 (the generator swaps operands the same way).
        return compat_join(right, left, JoinType::Left);
    }
    let shared: Vec<String> = left
        .columns()
        .iter()
        .filter(|c| right.columns().contains(c))
        .cloned()
        .collect();
    let mut columns = left.columns().to_vec();
    for c in right.columns() {
        if !columns.contains(c) {
            columns.push(c.clone());
        }
    }
    let width = columns.len();
    let l_idx: Vec<usize> = shared
        .iter()
        .map(|c| left.column_index(c).expect("shared"))
        .collect();
    let r_idx: Vec<usize> = shared
        .iter()
        .map(|c| right.column_index(c).expect("shared"))
        .collect();
    let r_targets: Vec<usize> = right
        .columns()
        .iter()
        .map(|c| columns.iter().position(|x| x == c).expect("target"))
        .collect();
    let mut out = DataFrame::new(columns);

    let compatible = |l: &[Cell], r: &[Cell]| -> bool {
        l_idx
            .iter()
            .zip(&r_idx)
            .all(|(&li, &ri)| l[li].is_null() || r[ri].is_null() || l[li] == r[ri])
    };
    let merge = |l: &[Cell], r: &[Cell]| -> Vec<Cell> {
        let mut row = l.to_vec();
        row.resize(width, Cell::Null);
        for (i, &t) in r_targets.iter().enumerate() {
            if row[t].is_null() {
                row[t] = r[i].clone();
            }
        }
        row
    };

    // Hash path: shared columns that are non-null in *every* row of both
    // sides form the hash key (pandas merges hash the same way); remaining
    // shared columns are checked per candidate with null-compatible
    // semantics. Falls back to nested loop when no such column exists.
    let all_bound = |df: &DataFrame, idx: usize| df.rows().iter().all(|r| !r[idx].is_null());
    let key_positions: Vec<usize> = (0..shared.len())
        .filter(|&k| all_bound(left, l_idx[k]) && all_bound(right, r_idx[k]))
        .collect();

    if !key_positions.is_empty() || shared.is_empty() {
        let mut index: std::collections::HashMap<Vec<&Cell>, Vec<usize>> =
            std::collections::HashMap::with_capacity(right.len());
        for (ri, r) in right.rows().iter().enumerate() {
            let key: Vec<&Cell> = key_positions.iter().map(|&k| &r[r_idx[k]]).collect();
            index.entry(key).or_default().push(ri);
        }
        for l in left.rows() {
            let key: Vec<&Cell> = key_positions.iter().map(|&k| &l[l_idx[k]]).collect();
            let mut matched = false;
            if let Some(candidates) = index.get(&key) {
                for &ri in candidates {
                    let r = &right.rows()[ri];
                    if compatible(l, r) {
                        out.push_row(merge(l, r));
                        matched = true;
                    }
                }
            }
            if !matched && matches!(how, JoinType::Left) {
                let mut row = l.to_vec();
                row.resize(width, Cell::Null);
                out.push_row(row);
            }
        }
        return out;
    }

    for l in left.rows() {
        let mut matched = false;
        for r in right.rows() {
            if compatible(l, r) {
                out.push_row(merge(l, r));
                matched = true;
            }
        }
        if !matched && matches!(how, JoinType::Left) {
            let mut row = l.to_vec();
            row.resize(width, Cell::Null);
            out.push_row(row);
        }
    }
    out
}

fn value_to_cell(frame: &RDFFrame, v: &Value) -> Result<Cell> {
    Ok(match v {
        Value::Number(n) => {
            if let Ok(i) = n.parse::<i64>() {
                Cell::Int(i)
            } else {
                Cell::Float(
                    n.parse::<f64>()
                        .map_err(|_| FrameError::BadCondition(format!("bad number {n}")))?,
                )
            }
        }
        Value::String(s) => Cell::str(s.clone()),
        Value::Iri(i) => {
            let iri = frame
                .graph()
                .prefixes()
                .expand(i)
                .map_err(|e| FrameError::Prefix(e.to_string()))?;
            Cell::uri(iri)
        }
    })
}

/// Does `cell` satisfy `cond`? (Public for the client-side baselines.)
pub fn condition_holds(frame: &RDFFrame, cond: &Condition, cell: &Cell) -> Result<bool> {
    Ok(match cond {
        Condition::Cmp(op, v) => {
            if cell.is_null() {
                return Ok(false);
            }
            let rhs = value_to_cell(frame, v)?;
            match op {
                CmpOp::Eq => *cell == rhs,
                CmpOp::Neq => {
                    // SPARQL != between incomparable kinds is an error →
                    // false for literal-vs-IRI mixtures of different kinds.
                    if comparable(cell, &rhs) {
                        *cell != rhs
                    } else {
                        false
                    }
                }
                _ => {
                    let ord = match (cell.as_f64(), rhs.as_f64()) {
                        (Some(a), Some(b)) => a.partial_cmp(&b),
                        _ => match (cell.as_str(), rhs.as_str()) {
                            (Some(a), Some(b)) if cell.is_uri() == rhs.is_uri() => Some(a.cmp(b)),
                            _ => None,
                        },
                    };
                    match (ord, op) {
                        (Some(o), CmpOp::Lt) => o == std::cmp::Ordering::Less,
                        (Some(o), CmpOp::Le) => o != std::cmp::Ordering::Greater,
                        (Some(o), CmpOp::Gt) => o == std::cmp::Ordering::Greater,
                        (Some(o), CmpOp::Ge) => o != std::cmp::Ordering::Less,
                        _ => false,
                    }
                }
            }
        }
        Condition::IsUri => cell.is_uri(),
        Condition::IsLiteral => !cell.is_uri() && !cell.is_null(),
        Condition::IsBlank => matches!(cell.as_str(), Some(s) if s.starts_with("_:")),
        Condition::Bound => !cell.is_null(),
        Condition::NotBound => cell.is_null(),
        Condition::Regex { pattern, flags } => {
            let re =
                Regex::new(pattern, flags).map_err(|e| FrameError::BadCondition(e.to_string()))?;
            match cell {
                Cell::Null => false,
                Cell::Uri(s) | Cell::Str(s) => re.is_match(s),
                other => re.is_match(&other.to_string()),
            }
        }
        Condition::In(values) => {
            let mut found = false;
            for v in values {
                if *cell == value_to_cell(frame, v)? {
                    found = true;
                    break;
                }
            }
            found
        }
        Condition::NotIn(values) => {
            if cell.is_null() {
                return Ok(false);
            }
            let mut found = false;
            for v in values {
                if *cell == value_to_cell(frame, v)? {
                    found = true;
                    break;
                }
            }
            !found
        }
        Condition::YearCmp(op, year) => {
            // Dates reach dataframes as their lexical form; the year is the
            // leading (possibly negative) integer.
            let Some(text) = cell.as_str() else {
                return Ok(false);
            };
            let (negative, rest) = match text.strip_prefix('-') {
                Some(r) => (true, r),
                None => (false, text),
            };
            let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
            let Ok(value) = digits.parse::<i64>() else {
                return Ok(false);
            };
            let value = if negative { -value } else { value };
            match op {
                CmpOp::Eq => value == *year,
                CmpOp::Neq => value != *year,
                CmpOp::Lt => value < *year,
                CmpOp::Le => value <= *year,
                CmpOp::Gt => value > *year,
                CmpOp::Ge => value >= *year,
            }
        }
    })
}

fn comparable(a: &Cell, b: &Cell) -> bool {
    a.is_uri() == b.is_uri() && !a.is_null() && !b.is_null()
}

fn agg_fn(func: AggFunc, distinct: bool) -> dataframe::AggFn {
    match (func, distinct) {
        (AggFunc::Count, true) => dataframe::AggFn::CountDistinct,
        (AggFunc::Count, false) => dataframe::AggFn::Count,
        (AggFunc::Sum, _) => dataframe::AggFn::Sum,
        (AggFunc::Avg, _) => dataframe::AggFn::Avg,
        (AggFunc::Min, _) => dataframe::AggFn::Min,
        (AggFunc::Max, _) => dataframe::AggFn::Max,
        (AggFunc::Sample, _) => dataframe::AggFn::Sample,
    }
}

/// Source of pattern matches and joined frames for [`apply_operators`].
///
/// The reference interpreter resolves against an in-memory [`Dataset`];
/// the evaluation's client-side baselines resolve by querying an endpoint.
pub trait FrameResolver {
    /// Fully evaluate another frame (the right side of a join).
    fn resolve_frame(&self, frame: &RDFFrame) -> Result<DataFrame>;
    /// Evaluate one triple pattern of `frame`'s graph into a dataframe.
    fn resolve_pattern(
        &self,
        frame: &RDFFrame,
        subject: &Node,
        predicate: &Node,
        object: &Node,
    ) -> Result<DataFrame>;
}

/// Resolver over an in-memory dataset (the reference oracle).
pub struct DatasetResolver<'a> {
    dataset: &'a Dataset,
}

impl<'a> DatasetResolver<'a> {
    /// Resolver for a dataset.
    pub fn new(dataset: &'a Dataset) -> Self {
        DatasetResolver { dataset }
    }

    fn graph_of(&self, frame: &RDFFrame) -> Result<std::sync::Arc<Graph>> {
        self.dataset
            .graph(frame.graph().uri())
            .cloned()
            .ok_or_else(|| FrameError::Endpoint(format!("no graph {}", frame.graph().uri())))
    }
}

impl FrameResolver for DatasetResolver<'_> {
    fn resolve_frame(&self, frame: &RDFFrame) -> Result<DataFrame> {
        apply_operators(frame, frame.operators(), DataFrame::new(vec![]), self)
    }

    fn resolve_pattern(
        &self,
        frame: &RDFFrame,
        subject: &Node,
        predicate: &Node,
        object: &Node,
    ) -> Result<DataFrame> {
        let graph = self.graph_of(frame)?;
        pattern_frame(frame, &graph, subject, predicate, object)
    }
}

/// Apply a sequence of operators to `start`, resolving patterns and joined
/// frames through `resolver`. This is the shared engine behind the
/// reference oracle and the "Navigation + dataframe" baseline.
pub fn apply_operators<R: FrameResolver + ?Sized>(
    frame: &RDFFrame,
    ops: &[Operator],
    start: DataFrame,
    resolver: &R,
) -> Result<DataFrame> {
    let mut df = start;
    let mut pending_group: Vec<String> = Vec::new();
    let mut i = 0usize;
    while i < ops.len() {
        match &ops[i] {
            Operator::Seed {
                subject,
                predicate,
                object,
            } => {
                df = resolver.resolve_pattern(frame, subject, predicate, object)?;
            }
            Operator::Expand {
                src,
                predicate,
                dst,
                direction,
                optional,
            } => {
                let (s, o) = match direction {
                    Direction::Out => (src, dst),
                    Direction::In => (dst, src),
                };
                let pred_node = match predicate.strip_prefix('?') {
                    Some(v) => Node::Var(v.to_string()),
                    None => Node::Term(predicate.clone()),
                };
                let pat = resolver.resolve_pattern(
                    frame,
                    &Node::Var(s.clone()),
                    &pred_node,
                    &Node::Var(o.clone()),
                )?;
                let how = if *optional {
                    JoinType::Left
                } else {
                    JoinType::Inner
                };
                df = compat_join(&df, &pat, how);
            }
            Operator::Filter { column, conditions } => {
                let idx = df
                    .column_index(column)
                    .ok_or_else(|| FrameError::UnknownColumn(column.clone()))?;
                let mut keep = Vec::with_capacity(df.len());
                for row in df.rows() {
                    let mut ok = true;
                    for c in conditions {
                        ok &= condition_holds(frame, c, &row[idx])?;
                    }
                    keep.push(ok);
                }
                let mut filtered = DataFrame::new(df.columns().to_vec());
                for (row, k) in df.rows().iter().zip(keep) {
                    if k {
                        filtered.push_row(row.clone());
                    }
                }
                df = filtered;
            }
            Operator::FilterRaw(_) => {
                return Err(FrameError::InvalidSequence(
                    "raw filters are not interpretable by the reference evaluator".into(),
                ))
            }
            Operator::SelectCols(cols) => {
                let refs: Vec<&str> = cols.iter().map(String::as_str).collect();
                df = df.select(&refs);
            }
            Operator::GroupBy(keys) => {
                pending_group = keys.clone();
            }
            Operator::Aggregation { .. } => {
                // Gather all consecutive aggregations over this group.
                let mut specs: Vec<(dataframe::AggFn, String, String)> = Vec::new();
                while let Some(Operator::Aggregation {
                    func,
                    src,
                    alias,
                    distinct,
                }) = ops.get(i)
                {
                    specs.push((agg_fn(*func, *distinct), src.clone(), alias.clone()));
                    i += 1;
                }
                i -= 1; // outer loop will advance
                let keys = std::mem::take(&mut pending_group);
                let key_refs: Vec<&str> = keys.iter().map(String::as_str).collect();
                let spec_refs: Vec<(dataframe::AggFn, &str, &str)> = specs
                    .iter()
                    .map(|(f, s, a)| (*f, s.as_str(), a.as_str()))
                    .collect();
                df = df.group_by(&key_refs).agg(&spec_refs);
                if keys.is_empty() && df.is_empty() {
                    // SPARQL's implicit single group over zero rows.
                    df.push_row(vec![Cell::Int(0); df.columns().len()]);
                }
            }
            Operator::Join {
                other,
                col,
                col2,
                jtype,
                new_col,
            } => {
                let mut right = resolver.resolve_frame(other)?;
                let join_name = new_col.clone().unwrap_or_else(|| col.clone());
                df.rename(col, &join_name);
                right.rename(col2, &join_name);
                df = compat_join(&df, &right, *jtype);
            }
            Operator::Sort(keys) => {
                let refs: Vec<(&str, bool)> = keys
                    .iter()
                    .map(|(c, o)| (c.as_str(), matches!(o, crate::api::SortOrder::Asc)))
                    .collect();
                df = df.sort_by(&refs);
            }
            Operator::Head { k, offset } => {
                df = df.head(*k, *offset);
            }
            Operator::Cache => {}
        }
        i += 1;
    }
    Ok(df)
}

/// Order-insensitive dataframe comparison with column alignment: both
/// frames are projected onto sorted column names, rows sorted, then
/// compared. Returns a human-readable mismatch description.
pub fn compare_unordered(a: &DataFrame, b: &DataFrame) -> std::result::Result<(), String> {
    let mut cols_a: Vec<&str> = a.columns().iter().map(String::as_str).collect();
    let mut cols_b: Vec<&str> = b.columns().iter().map(String::as_str).collect();
    cols_a.sort_unstable();
    cols_b.sort_unstable();
    if cols_a != cols_b {
        return Err(format!("column sets differ: {cols_a:?} vs {cols_b:?}"));
    }
    let pa = a.select(&cols_a);
    let pb = b.select(&cols_b);
    let key = |df: &DataFrame| {
        let mut rows: Vec<String> = df
            .rows()
            .iter()
            .map(|r| {
                r.iter()
                    .map(|c| c.to_string())
                    .collect::<Vec<_>>()
                    .join("\u{1}")
            })
            .collect();
        rows.sort();
        rows
    };
    let ra = key(&pa);
    let rb = key(&pb);
    if ra != rb {
        let only_a: Vec<&String> = ra.iter().filter(|r| !rb.contains(r)).take(3).collect();
        let only_b: Vec<&String> = rb.iter().filter(|r| !ra.contains(r)).take(3).collect();
        return Err(format!(
            "rows differ: {} vs {} rows; only-left sample {only_a:?}; only-right sample {only_b:?}",
            ra.len(),
            rb.len()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::KnowledgeGraph;
    use rdf_model::Triple;
    use std::sync::Arc;

    fn dataset() -> (Arc<Dataset>, KnowledgeGraph) {
        let mut g = Graph::new();
        let starring = Term::iri("http://dbpedia.org/property/starring");
        let birth = Term::iri("http://dbpedia.org/property/birthPlace");
        let usa = Term::iri("http://dbpedia.org/resource/United_States");
        let uk = Term::iri("http://dbpedia.org/resource/United_Kingdom");
        for (a, n, place) in [(0, 3, &usa), (1, 1, &usa), (2, 2, &uk)] {
            let actor = Term::iri(format!("http://dbpedia.org/resource/Actor_{a}"));
            g.insert(&Triple::new(actor.clone(), birth.clone(), (*place).clone()));
            for m in 0..n {
                g.insert(&Triple::new(
                    Term::iri(format!("http://dbpedia.org/resource/M{a}_{m}")),
                    starring.clone(),
                    actor.clone(),
                ));
            }
        }
        let mut ds = Dataset::new();
        ds.insert_graph("http://dbpedia.org", g);
        let kg = KnowledgeGraph::new("http://dbpedia.org")
            .with_prefix("dbpp", "http://dbpedia.org/property/")
            .with_prefix("dbpr", "http://dbpedia.org/resource/");
        (Arc::new(ds), kg)
    }

    #[test]
    fn seed_filter_group_reference() {
        let (ds, kg) = dataset();
        let f = kg
            .feature_domain_range("dbpp:starring", "movie", "actor")
            .expand("actor", "dbpp:birthPlace", "country")
            .filter("country", &["=dbpr:United_States"])
            .group_by(&["actor"])
            .count("movie", "n", true);
        let df = evaluate_reference(&f, &ds).unwrap();
        assert_eq!(df.len(), 2);
        let mut counts: Vec<i64> = df
            .column("n")
            .unwrap()
            .map(|c| c.as_i64().unwrap())
            .collect();
        counts.sort_unstable();
        assert_eq!(counts, vec![1, 3]);
    }

    #[test]
    fn reference_matches_sparql_path() {
        let (ds, kg) = dataset();
        let endpoint = crate::client::InProcessEndpoint::new(Arc::clone(&ds));
        let f = kg
            .feature_domain_range("dbpp:starring", "movie", "actor")
            .expand("actor", "dbpp:birthPlace", "country")
            .filter("country", &["=dbpr:United_States"]);
        let via_sparql = f.execute(&endpoint).unwrap();
        let via_reference = evaluate_reference(&f, &ds).unwrap();
        compare_unordered(&via_sparql, &via_reference).unwrap();
    }

    #[test]
    fn compare_detects_differences() {
        let mut a = DataFrame::new(vec!["x".into()]);
        a.push_row(vec![Cell::Int(1)]);
        let mut b = DataFrame::new(vec!["x".into()]);
        b.push_row(vec![Cell::Int(2)]);
        assert!(compare_unordered(&a, &b).is_err());
        let mut c = DataFrame::new(vec!["y".into()]);
        c.push_row(vec![Cell::Int(1)]);
        assert!(compare_unordered(&a, &c).is_err());
        assert!(compare_unordered(&a, &a).is_ok());
    }
}
