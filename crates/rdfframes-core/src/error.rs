//! Error type for the RDFFrames core.

use std::fmt;

/// Errors raised while recording operators, generating queries, or executing
/// them against an endpoint.
#[derive(Debug, Clone, PartialEq)]
pub enum FrameError {
    /// An operator referenced a column not present in the frame.
    UnknownColumn(String),
    /// A filter condition string could not be parsed.
    BadCondition(String),
    /// An operator sequence is invalid (e.g. aggregation without group_by
    /// followed by further operators).
    InvalidSequence(String),
    /// The endpoint rejected or failed a query.
    Endpoint(String),
    /// Prefix expansion failed.
    Prefix(String),
    /// The query model could not be compiled directly to an engine plan
    /// (embedded execution path).
    Compile(String),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            FrameError::BadCondition(c) => write!(f, "bad filter condition: {c}"),
            FrameError::InvalidSequence(m) => write!(f, "invalid operator sequence: {m}"),
            FrameError::Endpoint(m) => write!(f, "endpoint error: {m}"),
            FrameError::Prefix(m) => write!(f, "prefix error: {m}"),
            FrameError::Compile(m) => write!(f, "query compilation error: {m}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, FrameError>;
