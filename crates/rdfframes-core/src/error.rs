//! Error type for the RDFFrames core.

use std::fmt;

/// Errors raised while recording operators, generating queries, or executing
/// them against an endpoint.
#[derive(Debug, Clone, PartialEq)]
pub enum FrameError {
    /// An operator referenced a column not present in the frame.
    UnknownColumn(String),
    /// A filter condition string could not be parsed.
    BadCondition(String),
    /// An operator sequence is invalid (e.g. aggregation without group_by
    /// followed by further operators).
    InvalidSequence(String),
    /// The endpoint rejected or failed a query. Fatal: retrying the same
    /// request reproduces the same failure (parse error, unknown graph,
    /// server-side rejection).
    Endpoint(String),
    /// A transport-level fault: the request may not have reached the
    /// server, or the response arrived damaged (connection reset, truncated
    /// or malformed result encoding, schema drift between chunks).
    /// Retryable — a cursor-less SPARQL endpoint re-executes per request,
    /// so repeating the chunk is always safe.
    Transport(String),
    /// The server gave up on the query because it exceeded a configured
    /// resource budget (rows scanned, intermediate size, memory, or
    /// deadline). Fatal: re-sending the identical query hits the identical
    /// limit.
    ResourceExhausted(String),
    /// Prefix expansion failed.
    Prefix(String),
    /// The query model could not be compiled directly to an engine plan
    /// (embedded execution path).
    Compile(String),
    /// The server's admission controller shed this query: every execution
    /// slot was busy and the bounded wait queue was full (or the query
    /// class does not queue). Retryable — nothing about the query itself
    /// failed; the server was momentarily saturated and says so instead of
    /// queueing unboundedly or hanging.
    Overloaded(String),
    /// A server-side mutation failed before it was published: the
    /// write-ahead commit errored (disk fault, poisoned store) or the
    /// mutation closure panicked. The last published epoch keeps serving;
    /// nothing was partially applied.
    Mutation(String),
}

impl FrameError {
    /// Is retrying the same request worthwhile? Transport faults qualify
    /// (the failure was in delivery, not in the query), as does admission
    /// shedding (the server was saturated at that instant; the load may
    /// have drained by the retry). Endpoint rejections, budget exhaustion,
    /// and every client-side error are deterministic — the retry would
    /// fail the same way.
    pub fn is_retryable(&self) -> bool {
        matches!(self, FrameError::Transport(_) | FrameError::Overloaded(_))
    }
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            FrameError::BadCondition(c) => write!(f, "bad filter condition: {c}"),
            FrameError::InvalidSequence(m) => write!(f, "invalid operator sequence: {m}"),
            FrameError::Endpoint(m) => write!(f, "endpoint error: {m}"),
            FrameError::Transport(m) => write!(f, "transport error: {m}"),
            FrameError::ResourceExhausted(m) => write!(f, "resource exhausted: {m}"),
            FrameError::Prefix(m) => write!(f, "prefix error: {m}"),
            FrameError::Compile(m) => write!(f, "query compilation error: {m}"),
            FrameError::Overloaded(m) => write!(f, "server overloaded: {m}"),
            FrameError::Mutation(m) => write!(f, "mutation failed: {m}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, FrameError>;
