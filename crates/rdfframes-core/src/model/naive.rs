//! Naive query generation — the evaluation baseline of Section 6.3.
//!
//! "For each API call to RDFFrames, we generate a subquery that contains the
//! pattern corresponding to that API call and we finally join all the
//! subqueries in one level of nesting with one outer query." This mirrors
//! the appendix C/D queries: every seed/expand gets its own single-pattern
//! `SELECT` subquery, every filter gets a subquery repeating the pattern
//! that binds its column plus the `FILTER`, and grouping wraps everything
//! accumulated so far in a grouped subquery.
//!
//! The one deliberate deviation: optional expands attach their `OPTIONAL`
//! at the outer level rather than inside a subquery, keeping the naive
//! query semantically equivalent to the optimized one (the paper verifies
//! all alternatives return identical results).

use crate::api::knowledge_graph::KnowledgeGraph;
use crate::api::operators::{Direction, JoinType, Node, Operator};
use crate::api::rdfframe::RDFFrame;
use crate::error::Result;

use super::generator::base_model;
use super::{AggSpec, FilterSpec, OptionalBlock, QueryModel, TriplePat};

/// Build the naive query model for a frame.
pub fn build_naive_model(frame: &RDFFrame) -> Result<QueryModel> {
    naive_ops(frame.graph(), frame.operators())
}

fn pattern_subquery(t: TriplePat, context: &QueryModel) -> QueryModel {
    let mut sub = QueryModel {
        prefixes: context.prefixes.clone(),
        graphs: context.graphs.clone(),
        ..Default::default()
    };
    sub.select = [&t.subject, &t.predicate, &t.object]
        .into_iter()
        .filter_map(|n| n.as_var().map(str::to_string))
        .collect();
    sub.triples.push(t);
    sub
}

fn triple_for_expand(
    src: &str,
    predicate: &str,
    dst: &str,
    direction: Direction,
    graph: &str,
) -> TriplePat {
    let (s, o) = match direction {
        Direction::Out => (src, dst),
        Direction::In => (dst, src),
    };
    let predicate = match predicate.strip_prefix('?') {
        Some(v) => Node::Var(v.to_string()),
        None => Node::Term(predicate.to_string()),
    };
    TriplePat {
        subject: Node::Var(s.to_string()),
        predicate,
        object: Node::Var(o.to_string()),
        graph: graph.to_string(),
    }
}

/// Find the triple pattern (from earlier operators) that binds `column`.
fn binding_pattern(ops: &[Operator], column: &str, graph: &str) -> Option<TriplePat> {
    for op in ops {
        match op {
            Operator::Seed {
                subject,
                predicate,
                object,
            } => {
                let t = TriplePat {
                    subject: subject.clone(),
                    predicate: predicate.clone(),
                    object: object.clone(),
                    graph: graph.to_string(),
                };
                if [&t.subject, &t.predicate, &t.object]
                    .into_iter()
                    .any(|n| n.as_var() == Some(column))
                {
                    return Some(t);
                }
            }
            Operator::Expand {
                src,
                predicate,
                dst,
                direction,
                ..
            } if dst == column || src == column => {
                return Some(triple_for_expand(src, predicate, dst, *direction, graph));
            }
            _ => {}
        }
    }
    None
}

fn naive_ops(graph: &KnowledgeGraph, ops: &[Operator]) -> Result<QueryModel> {
    let mut m = base_model(graph);
    let graph_uri = graph.uri().to_string();
    let mut pending_group: Vec<String> = Vec::new();
    let mut seen: Vec<Operator> = Vec::new();
    // Once grouping or a join changes the visible schema, repeating a
    // binding pattern for a filter would re-expose consumed variables (and
    // change multiplicities); from then on filters stay at the outer level.
    let mut simple_prefix = true;

    for op in ops {
        match op {
            Operator::Seed {
                subject,
                predicate,
                object,
            } => {
                let t = TriplePat {
                    subject: subject.clone(),
                    predicate: predicate.clone(),
                    object: object.clone(),
                    graph: graph_uri.clone(),
                };
                let sub = pattern_subquery(t, &m);
                m.subqueries.push(sub);
            }
            Operator::Expand {
                src,
                predicate,
                dst,
                direction,
                optional,
            } => {
                let t = triple_for_expand(src, predicate, dst, *direction, &graph_uri);
                if *optional {
                    m.optionals.push(OptionalBlock {
                        triples: vec![t],
                        filters: vec![],
                    });
                } else {
                    let sub = pattern_subquery(t, &m);
                    m.subqueries.push(sub);
                }
                if !m.select.is_empty() && !m.select.contains(dst) {
                    m.select.push(dst.clone());
                }
            }
            Operator::Filter { column, conditions } => {
                let spec = FilterSpec::Col {
                    column: column.clone(),
                    conditions: conditions.clone(),
                };
                match binding_pattern(&seen, column, &graph_uri).filter(|_| simple_prefix) {
                    Some(t) => {
                        let mut sub = pattern_subquery(t, &m);
                        sub.filters.push(spec);
                        m.subqueries.push(sub);
                    }
                    None => {
                        // Aggregate alias or join output: outer-level FILTER.
                        m.filters.push(spec);
                    }
                }
            }
            Operator::FilterRaw(expr) => {
                m.filters.push(FilterSpec::Raw(expr.clone()));
            }
            Operator::SelectCols(cols) => {
                m.select = cols.clone();
            }
            Operator::GroupBy(keys) => {
                pending_group = keys.clone();
            }
            Operator::Aggregation {
                func,
                src,
                alias,
                distinct,
            } => {
                // Wrap everything accumulated so far into a grouped
                // subquery (the appendix-D shape).
                let was_grouped = m.is_grouped();
                let mut grouped = if was_grouped {
                    // A second aggregation over the same group: extend the
                    // existing grouped model.
                    m
                } else {
                    let mut g = std::mem::take(&mut m);
                    g.group_by = std::mem::take(&mut pending_group);
                    g
                };
                grouped.aggregates.push(AggSpec {
                    func: *func,
                    distinct: *distinct,
                    src: src.clone(),
                    alias: alias.clone(),
                });
                grouped.select = grouped.group_by.clone();
                grouped
                    .select
                    .extend(grouped.aggregates.iter().map(|a| a.alias.clone()));
                grouped.distinct = true;
                simple_prefix = false;
                if was_grouped {
                    m = grouped;
                } else {
                    m = QueryModel {
                        prefixes: grouped.prefixes.clone(),
                        graphs: grouped.graphs.clone(),
                        ..Default::default()
                    };
                    m.subqueries.push(grouped);
                }
            }
            Operator::Join {
                other,
                col,
                col2,
                jtype,
                new_col,
            } => {
                let mut m2 = naive_ops(other.graph(), other.operators())?;
                let join_name = new_col.clone().unwrap_or_else(|| col.clone());
                m.rename_var(col, &join_name);
                m2.rename_var(col2, &join_name);
                m.absorb_context(&m2);
                m2.absorb_context(&m);
                let mut outer = QueryModel {
                    prefixes: m.prefixes.clone(),
                    graphs: m.graphs.clone(),
                    ..Default::default()
                };
                match jtype {
                    JoinType::Inner => {
                        outer.subqueries.push(m);
                        outer.subqueries.push(m2);
                    }
                    JoinType::Left => {
                        outer.subqueries.push(m);
                        outer.optional_subqueries.push(m2);
                    }
                    JoinType::Right => {
                        outer.subqueries.push(m2);
                        outer.optional_subqueries.push(m);
                    }
                    JoinType::Outer => {
                        let mut b1 = QueryModel {
                            prefixes: outer.prefixes.clone(),
                            graphs: outer.graphs.clone(),
                            ..Default::default()
                        };
                        b1.subqueries.push(m.clone());
                        b1.optional_subqueries.push(m2.clone());
                        let mut b2 = QueryModel {
                            prefixes: outer.prefixes.clone(),
                            graphs: outer.graphs.clone(),
                            ..Default::default()
                        };
                        b2.subqueries.push(m2);
                        b2.optional_subqueries.push(m);
                        outer.unions.push(b1);
                        outer.unions.push(b2);
                    }
                }
                m = outer;
                simple_prefix = false;
            }
            Operator::Sort(keys) => {
                m.order_by = keys.clone();
            }
            Operator::Head { k, offset } => {
                m.limit = Some(*k);
                if *offset > 0 {
                    m.offset = Some(*offset);
                }
            }
            Operator::Cache => {}
        }
        seen.push(op.clone());
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::KnowledgeGraph;

    fn graph() -> KnowledgeGraph {
        KnowledgeGraph::new("http://dbpedia.org")
            .with_prefix("dbpp", "http://dbpedia.org/property/")
            .with_prefix("dbpr", "http://dbpedia.org/resource/")
    }

    #[test]
    fn each_expand_gets_its_own_subquery() {
        let f = graph()
            .feature_domain_range("dbpp:starring", "movie", "actor")
            .expand("actor", "dbpp:birthPlace", "country")
            .expand("movie", "dbpp:country", "movie_country");
        let m = build_naive_model(&f).unwrap();
        assert_eq!(m.subqueries.len(), 3);
        for sub in &m.subqueries {
            assert_eq!(sub.triples.len(), 1);
        }
    }

    #[test]
    fn filter_repeats_binding_pattern() {
        let f = graph()
            .feature_domain_range("dbpp:starring", "movie", "actor")
            .expand("actor", "dbpp:birthPlace", "country")
            .filter("country", &["=dbpr:United_States"]);
        let m = build_naive_model(&f).unwrap();
        // seed + expand + filter-with-pattern = 3 subqueries.
        assert_eq!(m.subqueries.len(), 3);
        let last = m.subqueries.last().unwrap();
        assert_eq!(last.triples.len(), 1);
        assert_eq!(last.filters.len(), 1);
    }

    #[test]
    fn grouping_wraps_accumulated_subqueries() {
        let f = graph()
            .feature_domain_range("dbpp:starring", "movie", "actor")
            .expand("actor", "dbpp:birthPlace", "country")
            .group_by(&["actor"])
            .count("movie", "n", true)
            .filter("n", &[">=5"]);
        let m = build_naive_model(&f).unwrap();
        // The grouped subquery holds the two pattern subqueries.
        assert_eq!(m.subqueries.len(), 1);
        let grouped = &m.subqueries[0];
        assert!(grouped.is_grouped());
        assert_eq!(grouped.subqueries.len(), 2);
        // The aggregate filter lands at the outer level.
        assert_eq!(m.filters.len(), 1);
    }

    #[test]
    fn naive_query_parses_in_engine() {
        let g = graph();
        let movies = g.feature_domain_range("dbpp:starring", "movie", "actor");
        let f = movies
            .clone()
            .expand("actor", "dbpp:birthPlace", "country")
            .filter("country", &["=dbpr:United_States"])
            .group_by(&["actor"])
            .count("movie", "n", true)
            .filter("n", &[">=5"])
            .join(&movies, "actor", crate::api::JoinType::Inner);
        let q = f.to_naive_sparql();
        sparql_engine::parser::parse_query(&q)
            .unwrap_or_else(|e| panic!("engine rejected naive query:\n{q}\n{e}"));
    }
}
