//! Direct query-model → engine-plan compilation: the embedded half of the
//! Translator.
//!
//! The paper's architecture renders every [`QueryModel`] to SPARQL text,
//! ships it over (simulated) HTTP, and the engine re-parses it. When the
//! engine lives in the same process that detour is pure overhead, so this
//! module compiles the model **straight into the engine's
//! [`Plan`] algebra** — no SPARQL string, no parser, no result
//! re-serialization.
//!
//! The compiler is deliberately a *mirror* of `render → parse → translate`:
//! for every model the generator produces, `compile(model).plan` is
//! structurally equal to
//! `translate_query(&parse_query(&render(model)))` — the same BGP grouping
//! (including per-`GRAPH` chunking of cross-graph models), the same
//! join/left-join/union shape, the same `Group → Filter(HAVING) → OrderBy →
//! Project → Distinct → Slice` modifier spine, and the same `SELECT *`
//! projection order. That equality is what makes the string renderer a
//! differential oracle for the embedded path (and is asserted by the
//! embedded-vs-wire test suite): after the shared optimizer pass, both
//! paths execute identical plans and report identical `rows_scanned`.
//!
//! The one place strings survive is [`FilterSpec::Raw`] — the API's escape
//! hatch is *defined* as raw SPARQL expression text, so it compiles through
//! the engine's expression parser
//! ([`sparql_engine::parser::parse_expression_with_prefixes`]).

use std::collections::BTreeSet;

use rdf_model::term::Literal;
use rdf_model::{vocab, PrefixMap, Term};
use sparql_engine::algebra::{AggSpec as PlanAgg, GraphRef, Plan};
use sparql_engine::ast::{
    AggOp, CmpOp as AstCmpOp, Expr, Func, OrderKey, PatternTerm, TriplePattern,
};
use sparql_engine::parser::parse_expression_with_prefixes;

use crate::api::conditions::{CmpOp, Condition, Value};
use crate::api::operators::{AggFunc, Node, SortOrder};
use crate::error::{FrameError, Result};

use super::{FilterSpec, QueryModel, TriplePat};

/// A query model compiled to an (unoptimized) engine plan plus the `FROM`
/// graph list that resolves [`GraphRef::Default`] BGPs. Feed it to
/// [`sparql_engine::Engine::prepare_plan`] to get the optimizer pass the
/// string path gets.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledQuery {
    /// The translated logical plan (pre-optimizer).
    pub plan: Plan,
    /// Graphs the default graph resolves to (empty for cross-graph models,
    /// whose BGPs are all explicitly graph-qualified).
    pub from: Vec<String>,
}

/// Compile a query model directly to the engine algebra.
pub fn compile(model: &QueryModel) -> Result<CompiledQuery> {
    let mut graphs = BTreeSet::new();
    collect_graphs(model, &mut graphs);
    let multi_graph = graphs.len() > 1;

    // Only the outermost model's prefixes are in scope, exactly as the
    // renderer declares only them; the engine parser layers them over the
    // standard defaults, so we do too.
    let mut prefixes = PrefixMap::with_defaults();
    for (p, ns) in &model.prefixes {
        prefixes.declare(p, ns);
    }

    let cx = Compiler {
        multi_graph,
        prefixes,
    };
    let plan = cx.compile_select(model)?;
    let from = if multi_graph {
        Vec::new()
    } else {
        model.graphs.clone()
    };
    Ok(CompiledQuery { plan, from })
}

fn collect_graphs(m: &QueryModel, out: &mut BTreeSet<String>) {
    for t in &m.triples {
        out.insert(t.graph.clone());
    }
    for ob in &m.optionals {
        for t in &ob.triples {
            out.insert(t.graph.clone());
        }
    }
    for sub in m
        .subqueries
        .iter()
        .chain(&m.optional_subqueries)
        .chain(&m.unions)
    {
        collect_graphs(sub, out);
    }
}

/// Where a term constant appears in a triple pattern — the SPARQL grammar
/// allows literals only in the object position, and the `a` keyword only as
/// predicate; the compiler enforces the same rules the parser would.
#[derive(Clone, Copy, PartialEq)]
enum TriplePos {
    Subject,
    Predicate,
    Object,
}

struct Compiler {
    multi_graph: bool,
    prefixes: PrefixMap,
}

impl Compiler {
    // ---- query level ---------------------------------------------------

    /// Compile one (sub)query model: body + the spec-ordered modifier spine
    /// `Group → Filter(HAVING)* → OrderBy → Project → Distinct → Slice`.
    fn compile_select(&self, m: &QueryModel) -> Result<Plan> {
        let mut plan = self.compile_body(m)?;

        // The projection list exactly as the renderer would emit it.
        let select_names: Vec<String> = if m.select.is_empty() {
            if m.is_grouped() {
                let mut names = m.group_by.clone();
                names.extend(m.aggregates.iter().map(|a| a.alias.clone()));
                names
            } else {
                Vec::new()
            }
        } else {
            m.select.clone()
        };

        let is_agg_alias = |name: &String| m.aggregates.iter().any(|a| &a.alias == name);
        // Mirrors `SelectQuery::is_aggregated` on the rendered text: GROUP
        // BY present, HAVING present, or an aggregate item in SELECT.
        let aggregated =
            !m.group_by.is_empty() || !m.having.is_empty() || select_names.iter().any(is_agg_alias);

        if aggregated {
            // Aggregates surface in SELECT order (translation pulls them out
            // of the projection items); HAVING reuses an identical aggregate
            // when one exists, otherwise appends a fresh `__aggN` output —
            // both exactly as `algebra::extract_aggregates` does.
            let mut aggs: Vec<PlanAgg> = Vec::new();
            for name in &select_names {
                if let Some(spec) = m.aggregates.iter().find(|a| &a.alias == name) {
                    aggs.push(PlanAgg {
                        op: agg_op(spec.func),
                        distinct: spec.distinct,
                        expr: Some(Expr::Var(spec.src.clone())),
                        output: spec.alias.clone(),
                    });
                }
            }
            let mut counter = 0usize;
            let mut having_filters: Vec<Expr> = Vec::new();
            for h in &m.having {
                having_filters.push(self.having_expr(m, h, &mut aggs, &mut counter)?);
            }
            plan = Plan::Group {
                keys: m.group_by.clone(),
                aggs,
                input: Box::new(plan),
                sorted_on: Vec::new(),
            };
            for h in having_filters {
                plan = Plan::Filter(h, Box::new(plan));
            }
        }

        if !m.order_by.is_empty() {
            let keys = m
                .order_by
                .iter()
                .map(|(col, ord)| OrderKey {
                    expr: Expr::Var(col.clone()),
                    ascending: matches!(ord, SortOrder::Asc),
                })
                .collect();
            plan = Plan::OrderBy(keys, Box::new(plan));
        }

        let projected = if select_names.is_empty() {
            self.star_vars(m)
        } else {
            select_names
        };
        plan = Plan::Project(projected, Box::new(plan));

        if m.distinct {
            plan = Plan::Distinct(Box::new(plan));
        }
        if m.limit.is_some() || m.offset.is_some() {
            plan = Plan::Slice {
                limit: m.limit,
                offset: m.offset.unwrap_or(0),
                input: Box::new(plan),
            };
        }
        Ok(plan)
    }

    /// The variables a rendered `SELECT *` resolves to: the pattern's
    /// in-scope variables in body order (triples → subqueries → unions →
    /// optional subqueries → optional blocks), subqueries contributing only
    /// their projections — the same walk the parser's `in_scope_vars` does
    /// over the rendered text.
    fn star_vars(&self, m: &QueryModel) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_body_vars(m, &mut out);
        out
    }

    fn collect_body_vars(&self, m: &QueryModel, out: &mut Vec<String>) {
        fn push(out: &mut Vec<String>, v: &str) {
            if !out.iter().any(|x| x == v) {
                out.push(v.to_string());
            }
        }
        let push_triple = |t: &TriplePat, out: &mut Vec<String>| {
            for n in [&t.subject, &t.predicate, &t.object] {
                if let Node::Var(v) = n {
                    push(out, v);
                }
            }
        };
        for t in &m.triples {
            push_triple(t, out);
        }
        for sub in &m.subqueries {
            for v in self.projected_names(sub) {
                push(out, &v);
            }
        }
        for branch in &m.unions {
            if Self::renders_as_subselect(branch) {
                for v in self.projected_names(branch) {
                    push(out, &v);
                }
            } else {
                self.collect_body_vars(branch, out);
            }
        }
        for sub in &m.optional_subqueries {
            for v in self.projected_names(sub) {
                push(out, &v);
            }
        }
        for ob in &m.optionals {
            for t in &ob.triples {
                push_triple(t, out);
            }
        }
    }

    /// The names a nested model projects (its explicit/grouped projection,
    /// or its star expansion).
    fn projected_names(&self, m: &QueryModel) -> Vec<String> {
        if !m.select.is_empty() {
            return m.select.clone();
        }
        if m.is_grouped() {
            let mut names = m.group_by.clone();
            names.extend(m.aggregates.iter().map(|a| a.alias.clone()));
            return names;
        }
        self.star_vars(m)
    }

    /// A HAVING constraint as a filter expression over the Group output.
    ///
    /// The renderer substitutes the aggregate *expression* for the alias;
    /// parsing then re-extracts it, reusing an existing identical aggregate
    /// (same op, DISTINCT, source) or minting a fresh `__aggN` column. This
    /// reproduces that dance without the text.
    fn having_expr(
        &self,
        m: &QueryModel,
        spec: &FilterSpec,
        aggs: &mut Vec<PlanAgg>,
        counter: &mut usize,
    ) -> Result<Expr> {
        match spec {
            FilterSpec::Col { column, conditions } => {
                let lhs_var = match m.aggregates.iter().find(|a| &a.alias == column) {
                    Some(agg_spec) => {
                        let op = agg_op(agg_spec.func);
                        let expr = Some(Expr::Var(agg_spec.src.clone()));
                        match aggs.iter().find(|a| {
                            a.op == op && a.distinct == agg_spec.distinct && a.expr == expr
                        }) {
                            Some(existing) => existing.output.clone(),
                            None => {
                                let name = format!("__agg{counter}");
                                *counter += 1;
                                aggs.push(PlanAgg {
                                    op,
                                    distinct: agg_spec.distinct,
                                    expr,
                                    output: name.clone(),
                                });
                                name
                            }
                        }
                    }
                    None => column.clone(),
                };
                self.conditions_expr(Expr::Var(lhs_var), conditions)
            }
            FilterSpec::Raw(raw) => {
                let expr = parse_expression_with_prefixes(raw, &self.prefixes)
                    .map_err(|e| FrameError::Compile(format!("raw HAVING `{raw}`: {e}")))?;
                if expr.has_aggregate() {
                    // The generator never emits raw HAVING text containing
                    // aggregates; supporting it would mean re-running the
                    // engine's aggregate extraction here. Fail loudly
                    // instead of diverging silently from the wire path.
                    return Err(FrameError::Compile(format!(
                        "raw HAVING with aggregate expressions is not supported \
                         by the embedded path: {raw}"
                    )));
                }
                Ok(expr)
            }
        }
    }

    // ---- body level ----------------------------------------------------

    /// Compile the graph-pattern body of a model in render order:
    /// triples (one BGP, or per-`GRAPH` chunks for cross-graph models) →
    /// subqueries (joins) → unions (join) → optional subqueries (left
    /// joins) → optional blocks (left joins) → group filters.
    fn compile_body(&self, m: &QueryModel) -> Result<Plan> {
        let mut plan = self.triples_plan(&m.triples)?;

        for sub in &m.subqueries {
            plan = join(plan, self.compile_select(sub)?);
        }

        if !m.unions.is_empty() {
            let mut branches = m.unions.iter();
            let first = branches.next().expect("non-empty unions");
            let mut u = self.compile_union_branch(first)?;
            for branch in branches {
                u = Plan::Union(Box::new(u), Box::new(self.compile_union_branch(branch)?));
            }
            plan = join(plan, u);
        }

        for sub in &m.optional_subqueries {
            plan = Plan::LeftJoin(Box::new(plan), Box::new(self.compile_select(sub)?));
        }

        for ob in &m.optionals {
            let mut right = self.triples_plan(&ob.triples)?;
            for f in &ob.filters {
                right = Plan::Filter(self.filter_expr(f)?, Box::new(right));
            }
            plan = Plan::LeftJoin(Box::new(plan), Box::new(right));
        }

        for f in &m.filters {
            plan = Plan::Filter(self.filter_expr(f)?, Box::new(plan));
        }
        Ok(plan)
    }

    /// A union branch renders as a nested SELECT when it carries its own
    /// projection/aggregation/modifiers, otherwise as a plain body.
    fn renders_as_subselect(branch: &QueryModel) -> bool {
        branch.is_grouped() || !branch.select.is_empty() || branch.has_modifiers()
    }

    fn compile_union_branch(&self, branch: &QueryModel) -> Result<Plan> {
        if Self::renders_as_subselect(branch) {
            self.compile_select(branch)
        } else {
            self.compile_body(branch)
        }
    }

    /// Triples as BGPs. Single-graph models put every pattern in one
    /// default-graph BGP; cross-graph models chunk *consecutive* same-graph
    /// runs into separate named-graph BGPs — the same grouping the renderer
    /// produces with `GRAPH <g> { ... }` blocks, which matters because the
    /// optimizer reorders patterns only within one BGP.
    fn triples_plan(&self, triples: &[TriplePat]) -> Result<Plan> {
        if triples.is_empty() {
            return Ok(Plan::Unit);
        }
        if !self.multi_graph {
            let patterns = triples
                .iter()
                .map(|t| self.triple_pattern(t))
                .collect::<Result<Vec<_>>>()?;
            return Ok(Plan::Bgp {
                patterns,
                graph: GraphRef::Default,
                filters: Vec::new(),
            });
        }
        let mut plan = Plan::Unit;
        let mut i = 0;
        while i < triples.len() {
            let g = &triples[i].graph;
            let mut j = i;
            let mut patterns = Vec::new();
            while j < triples.len() && &triples[j].graph == g {
                patterns.push(self.triple_pattern(&triples[j])?);
                j += 1;
            }
            plan = join(
                plan,
                Plan::Bgp {
                    patterns,
                    graph: GraphRef::Named(g.clone()),
                    filters: Vec::new(),
                },
            );
            i = j;
        }
        Ok(plan)
    }

    fn triple_pattern(&self, t: &TriplePat) -> Result<TriplePattern> {
        Ok(TriplePattern::new(
            self.pattern_term(&t.subject, TriplePos::Subject)?,
            self.pattern_term(&t.predicate, TriplePos::Predicate)?,
            self.pattern_term(&t.object, TriplePos::Object)?,
        ))
    }

    fn pattern_term(&self, node: &Node, pos: TriplePos) -> Result<PatternTerm> {
        match node {
            Node::Var(v) => Ok(PatternTerm::Var(v.clone())),
            Node::Term(t) => Ok(PatternTerm::Const(self.term_const(t, pos)?)),
        }
    }

    /// A constant written in API syntax, resolved to a concrete term under
    /// the same rules the renderer + lexer + parser apply to it.
    fn term_const(&self, t: &str, pos: TriplePos) -> Result<Term> {
        let err = |msg: &str| FrameError::Compile(format!("term `{t}`: {msg}"));
        if let Some(rest) = t.strip_prefix('<') {
            let iri = rest
                .strip_suffix('>')
                .ok_or_else(|| err("unterminated <iri>"))?;
            return Ok(Term::iri(iri.to_string()));
        }
        if t.starts_with('"') {
            if pos != TriplePos::Object {
                return Err(err("literals are only allowed in the object position"));
            }
            return self.quoted_literal(t);
        }
        if t.starts_with("http://") || t.starts_with("https://") || t.starts_with("urn:") {
            return Ok(Term::iri(t.to_string()));
        }
        if t.parse::<f64>().is_ok() {
            // render_term emits the number bare; the lexer only accepts an
            // unsigned form, and only where literals may appear.
            if pos != TriplePos::Object {
                return Err(err("numbers are only allowed in the object position"));
            }
            if !t.as_bytes().first().is_some_and(|b| b.is_ascii_digit()) {
                return Err(err("signed numeric literals are not valid SPARQL tokens"));
            }
            return number_term(t).map_err(|m| err(&m));
        }
        if t == "a" {
            return if pos == TriplePos::Predicate {
                Ok(Term::iri(vocab::rdf::TYPE))
            } else {
                Err(err("`a` is only valid as a predicate"))
            };
        }
        if t.eq_ignore_ascii_case("true") || t.eq_ignore_ascii_case("false") {
            return if pos == TriplePos::Object {
                Ok(Term::Literal(Literal::boolean(
                    t.eq_ignore_ascii_case("true"),
                )))
            } else {
                Err(err("booleans are only allowed in the object position"))
            };
        }
        // CURIE.
        match t.split_once(':') {
            Some((prefix, local)) => match self.prefixes.namespace(prefix) {
                Some(ns) => Ok(Term::iri(format!("{ns}{local}"))),
                None => Err(FrameError::Compile(format!(
                    "unknown prefix `{prefix}:` in `{t}`"
                ))),
            },
            None => Err(err("not a variable, IRI, CURIE, or literal")),
        }
    }

    /// A quoted literal written as the user passed it (`"x"`, `"x"@en`,
    /// `"5"^^xsd:int`), with the lexer's escape rules.
    fn quoted_literal(&self, t: &str) -> Result<Term> {
        let err = |msg: &str| FrameError::Compile(format!("literal `{t}`: {msg}"));
        let rest = &t[1..];
        let mut lexical = String::with_capacity(rest.len());
        let mut chars = rest.chars();
        let mut tail = String::new();
        let mut closed = false;
        while let Some(c) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some('"') => lexical.push('"'),
                    Some('\'') => lexical.push('\''),
                    Some('\\') => lexical.push('\\'),
                    Some('n') => lexical.push('\n'),
                    Some('r') => lexical.push('\r'),
                    Some('t') => lexical.push('\t'),
                    other => {
                        return Err(err(&format!("bad escape \\{}", other.unwrap_or(' '))));
                    }
                },
                '"' => {
                    closed = true;
                    tail = chars.collect();
                    break;
                }
                other => lexical.push(other),
            }
        }
        if !closed {
            return Err(err("unterminated string"));
        }
        if tail.is_empty() {
            return Ok(Term::string(lexical));
        }
        if let Some(lang) = tail.strip_prefix('@') {
            return Ok(Term::Literal(Literal::lang_string(
                lexical,
                lang.to_string(),
            )));
        }
        if let Some(dt) = tail.strip_prefix("^^") {
            let iri = if let Some(inner) = dt.strip_prefix('<') {
                inner
                    .strip_suffix('>')
                    .ok_or_else(|| err("unterminated datatype IRI"))?
                    .to_string()
            } else {
                match dt.split_once(':') {
                    Some((prefix, local)) => match self.prefixes.namespace(prefix) {
                        Some(ns) => format!("{ns}{local}"),
                        None => return Err(err(&format!("unknown datatype prefix `{prefix}:`"))),
                    },
                    None => return Err(err("bad datatype")),
                }
            };
            return Ok(Term::Literal(Literal::typed(lexical, iri)));
        }
        Err(err("trailing content after closing quote"))
    }

    // ---- filters -------------------------------------------------------

    fn filter_expr(&self, f: &FilterSpec) -> Result<Expr> {
        match f {
            FilterSpec::Col { column, conditions } => {
                self.conditions_expr(Expr::Var(column.clone()), conditions)
            }
            FilterSpec::Raw(raw) => parse_expression_with_prefixes(raw, &self.prefixes)
                .map_err(|e| FrameError::Compile(format!("raw filter `{raw}`: {e}"))),
        }
    }

    /// A conjunction of conditions over one left-hand side, left-associated
    /// exactly as the rendered `c1 && c2 && c3` parses.
    fn conditions_expr(&self, lhs: Expr, conditions: &[Condition]) -> Result<Expr> {
        let mut it = conditions.iter();
        let first = it
            .next()
            .ok_or_else(|| FrameError::Compile("empty condition list".into()))?;
        let mut expr = self.condition_expr(first, &lhs)?;
        for c in it {
            expr = Expr::And(Box::new(expr), Box::new(self.condition_expr(c, &lhs)?));
        }
        Ok(expr)
    }

    fn condition_expr(&self, cond: &Condition, lhs: &Expr) -> Result<Expr> {
        let lhs = || Box::new(lhs.clone());
        Ok(match cond {
            Condition::Cmp(op, v) => Expr::Cmp(cmp_op(*op), lhs(), Box::new(self.value_expr(v)?)),
            Condition::IsUri => Expr::Call(Func::IsIri, vec![*lhs()]),
            Condition::IsLiteral => Expr::Call(Func::IsLiteral, vec![*lhs()]),
            Condition::IsBlank => Expr::Call(Func::IsBlank, vec![*lhs()]),
            Condition::Bound => Expr::Call(Func::Bound, vec![*lhs()]),
            Condition::NotBound => Expr::Not(Box::new(Expr::Call(Func::Bound, vec![*lhs()]))),
            Condition::Regex { pattern, flags } => {
                let mut args = vec![
                    Expr::Call(Func::Str, vec![*lhs()]),
                    Expr::Const(Term::string(pattern.clone())),
                ];
                if !flags.is_empty() {
                    args.push(Expr::Const(Term::string(flags.clone())));
                }
                Expr::Call(Func::Regex, args)
            }
            Condition::In(values) => Expr::In {
                expr: lhs(),
                list: values
                    .iter()
                    .map(|v| self.value_expr(v))
                    .collect::<Result<Vec<_>>>()?,
                negated: false,
            },
            Condition::NotIn(values) => Expr::In {
                expr: lhs(),
                list: values
                    .iter()
                    .map(|v| self.value_expr(v))
                    .collect::<Result<Vec<_>>>()?,
                negated: true,
            },
            Condition::YearCmp(op, year) => Expr::Cmp(
                cmp_op(*op),
                Box::new(Expr::Call(
                    Func::Year,
                    vec![Expr::Call(
                        Func::Cast(vocab::xsd::DATE_TIME.to_string()),
                        vec![*lhs()],
                    )],
                )),
                Box::new(Expr::Const(Term::integer(*year))),
            ),
        })
    }

    /// A condition value as the expression the rendered token parses to.
    fn value_expr(&self, v: &Value) -> Result<Expr> {
        match v {
            Value::Number(n) => {
                // The lexer has no signed number tokens; `-3` parses as
                // unary minus over `3` and a leading `+` is consumed by
                // `parse_unary`.
                if let Some(rest) = n.strip_prefix('-') {
                    return Ok(Expr::Neg(Box::new(Expr::Const(
                        number_term(rest).map_err(FrameError::Compile)?,
                    ))));
                }
                let rest = n.strip_prefix('+').unwrap_or(n);
                Ok(Expr::Const(number_term(rest).map_err(FrameError::Compile)?))
            }
            Value::String(s) => Ok(Expr::Const(Term::string(s.clone()))),
            Value::Iri(i) => {
                // Mirrors `Value::render`: absolute http(s) IRIs get angle
                // brackets, everything else is treated as a CURIE.
                if i.starts_with("http://") || i.starts_with("https://") {
                    return Ok(Expr::Const(Term::iri(i.clone())));
                }
                match i.split_once(':') {
                    Some((prefix, local)) => match self.prefixes.namespace(prefix) {
                        Some(ns) => Ok(Expr::Const(Term::iri(format!("{ns}{local}")))),
                        None => Err(FrameError::Compile(format!(
                            "unknown prefix `{prefix}:` in condition value `{i}`"
                        ))),
                    },
                    None => Err(FrameError::Compile(format!(
                        "condition value `{i}` is neither a number, string, IRI, nor CURIE"
                    ))),
                }
            }
        }
    }
}

/// Join with unit elision, matching `Plan::join` in the algebra translator.
fn join(a: Plan, b: Plan) -> Plan {
    match (a, b) {
        (Plan::Unit, p) | (p, Plan::Unit) => p,
        (a, b) => Plan::Join(Box::new(a), Box::new(b)),
    }
}

/// A bare numeric token: integer unless it carries a decimal point or
/// exponent (the lexer's `Integer` / `Decimal` split).
fn number_term(text: &str) -> std::result::Result<Term, String> {
    if text.contains(['.', 'e', 'E']) {
        text.parse::<f64>()
            .map(|d| Term::Literal(Literal::double(d)))
            .map_err(|_| format!("bad number `{text}`"))
    } else {
        text.parse::<i64>()
            .map(Term::integer)
            .map_err(|_| format!("bad number `{text}`"))
    }
}

fn agg_op(f: AggFunc) -> AggOp {
    match f {
        AggFunc::Count => AggOp::Count,
        AggFunc::Sum => AggOp::Sum,
        AggFunc::Avg => AggOp::Avg,
        AggFunc::Min => AggOp::Min,
        AggFunc::Max => AggOp::Max,
        AggFunc::Sample => AggOp::Sample,
    }
}

fn cmp_op(op: CmpOp) -> AstCmpOp {
    match op {
        CmpOp::Eq => AstCmpOp::Eq,
        CmpOp::Neq => AstCmpOp::Neq,
        CmpOp::Lt => AstCmpOp::Lt,
        CmpOp::Le => AstCmpOp::Le,
        CmpOp::Gt => AstCmpOp::Gt,
        CmpOp::Ge => AstCmpOp::Ge,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{JoinType, KnowledgeGraph};
    use crate::model::{generator, render};
    use sparql_engine::algebra::translate_query;
    use sparql_engine::parser::parse_query;

    fn graph() -> KnowledgeGraph {
        KnowledgeGraph::new("http://dbpedia.org")
            .with_prefix("dbpp", "http://dbpedia.org/property/")
            .with_prefix("dbpo", "http://dbpedia.org/ontology/")
            .with_prefix("dbpr", "http://dbpedia.org/resource/")
    }

    /// The compiler's contract: structural equality with the string path,
    /// pre-optimizer.
    fn assert_mirrors(frame: &crate::api::RDFFrame) {
        let model = generator::build_query_model(frame).unwrap();
        let compiled = compile(&model).unwrap();
        let sparql = render::render(&model);
        let parsed = parse_query(&sparql)
            .unwrap_or_else(|e| panic!("render produced unparseable SPARQL: {e}\n{sparql}"));
        let via_text = translate_query(&parsed).unwrap();
        assert_eq!(
            compiled.plan, via_text,
            "compiled plan diverges from render→parse→translate for:\n{sparql}"
        );
        assert_eq!(compiled.from, parsed.from, "FROM lists diverge:\n{sparql}");
    }

    #[test]
    fn flat_expand_filter_mirrors_text_path() {
        assert_mirrors(
            &graph()
                .feature_domain_range("dbpp:starring", "movie", "actor")
                .expand("actor", "dbpp:birthPlace", "country")
                .filter("country", &["=dbpr:United_States"]),
        );
    }

    #[test]
    fn grouped_having_mirrors_text_path() {
        assert_mirrors(
            &graph()
                .feature_domain_range("dbpp:starring", "movie", "actor")
                .group_by(&["actor"])
                .count("movie", "movie_count", true)
                .filter("movie_count", &[">=50"]),
        );
    }

    #[test]
    fn nested_subquery_after_group_mirrors_text_path() {
        assert_mirrors(
            &graph()
                .feature_domain_range("dbpp:starring", "movie", "actor")
                .group_by(&["actor"])
                .count("movie", "n", true)
                .expand("actor", "dbpp:birthPlace", "c"),
        );
    }

    #[test]
    fn optional_union_sort_head_mirror_text_path() {
        let movies = graph().feature_domain_range("dbpp:starring", "movie", "actor");
        assert_mirrors(
            &movies
                .clone()
                .expand_optional("movie", "dbpo:genre", "genre"),
        );
        assert_mirrors(&movies.clone().join(
            &graph().feature_domain_range("dbpp:academyAward", "actor", "award"),
            "actor",
            JoinType::Outer,
        ));
        assert_mirrors(
            &movies
                .clone()
                .sort(&[("movie", crate::api::SortOrder::Desc)])
                .head(10),
        );
        assert_mirrors(&movies.select_cols(&["actor"]));
    }

    #[test]
    fn cross_graph_join_mirrors_text_path() {
        let yago = KnowledgeGraph::new("http://yago-knowledge.org")
            .with_prefix("y", "http://yago-knowledge.org/resource/");
        let a = graph().feature_domain_range("dbpp:starring", "movie", "actor");
        let b = yago.seed("?actor", "rdf:type", "y:Actor");
        assert_mirrors(&a.join(&b, "actor", JoinType::Inner));
    }

    #[test]
    fn condition_vocabulary_mirrors_text_path() {
        let movies = graph().feature_domain_range("dbpp:starring", "movie", "actor");
        assert_mirrors(&movies.clone().filter("actor", &["isURI"]));
        assert_mirrors(&movies.clone().filter("actor", &["regex(\"Smith\", \"i\")"]));
        assert_mirrors(
            &movies
                .clone()
                .filter("actor", &["In(dbpr:A, dbpr:B)", "NotIn(dbpr:C)"]),
        );
        assert_mirrors(&movies.clone().filter("movie", &["!=dbpr:Some_Movie"]));
        assert_mirrors(
            &movies
                .clone()
                .expand("movie", "dbpp:runtime", "rt")
                .filter("rt", &[">=100", "<250"]),
        );
        assert_mirrors(
            &movies
                .clone()
                .expand("movie", "dbpp:released", "date")
                .filter("date", &["year>=2005"]),
        );
        assert_mirrors(&movies.filter_raw("year(xsd:dateTime(?movie)) >= 2005 || isIRI(?actor)"));
    }

    #[test]
    fn negative_and_float_condition_values() {
        let movies = graph()
            .feature_domain_range("dbpp:starring", "movie", "actor")
            .expand("movie", "dbpp:runtime", "rt");
        assert_mirrors(&movies.clone().filter("rt", &[">=-10"]));
        assert_mirrors(&movies.filter("rt", &["<99.5"]));
    }

    #[test]
    fn unknown_prefix_is_a_compile_error() {
        let f = KnowledgeGraph::new("http://g").seed("?s", "nope:pred", "?o");
        let model = generator::build_query_model(&f).unwrap();
        assert!(matches!(
            compile(&model),
            Err(FrameError::Compile(msg)) if msg.contains("nope")
        ));
    }

    #[test]
    fn literal_positions_enforced() {
        let cx = Compiler {
            multi_graph: false,
            prefixes: PrefixMap::with_defaults(),
        };
        assert!(cx.term_const("42", TriplePos::Object).is_ok());
        assert!(cx.term_const("42", TriplePos::Subject).is_err());
        assert!(cx.term_const("a", TriplePos::Predicate).is_ok());
        assert!(cx.term_const("a", TriplePos::Object).is_err());
        assert!(cx.term_const("true", TriplePos::Object).is_ok());
        assert_eq!(
            cx.term_const("\"hi\"@en", TriplePos::Object).unwrap(),
            Term::Literal(Literal::lang_string("hi", "en"))
        );
        assert_eq!(
            cx.term_const("\"5\"^^xsd:integer", TriplePos::Object)
                .unwrap(),
            Term::Literal(Literal::typed("5", vocab::xsd::INTEGER))
        );
    }
}
