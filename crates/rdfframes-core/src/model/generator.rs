//! Query-model generation: the paper's *Generator* (Section 4.2).
//!
//! Consumes an RDFFrame's recorded operator queue in FIFO order and builds a
//! [`QueryModel`], keeping everything in one flat model whenever semantics
//! allow and nesting only in the paper's three necessary cases:
//!
//! 1. `expand`/`filter` applied to a *grouped* frame (the grouping must
//!    evaluate first) — the model so far becomes a subquery.
//! 2. `join` involving a grouped frame — the grouped side becomes a
//!    subquery of the other side.
//! 3. Full outer join — SPARQL has no `FULL OUTER`, so the result is the
//!    UNION of two OPTIONAL (left-join) branches, each operand wrapped in a
//!    nested query.

use crate::api::knowledge_graph::KnowledgeGraph;
use crate::api::operators::{Direction, JoinType, Node, Operator};
use crate::api::rdfframe::RDFFrame;
use crate::error::{FrameError, Result};

use super::{AggSpec, FilterSpec, OptionalBlock, QueryModel, TriplePat};

/// Build the optimized query model for a frame.
pub fn build_query_model(frame: &RDFFrame) -> Result<QueryModel> {
    process_ops(frame.graph(), frame.operators())
}

/// Fresh model carrying the graph's URI and prefixes.
pub(crate) fn base_model(graph: &KnowledgeGraph) -> QueryModel {
    let mut m = QueryModel::for_graph(graph.uri());
    for (p, ns) in graph.prefixes().iter() {
        m.prefixes.insert(p.to_string(), ns.to_string());
    }
    m
}

fn triple_for_expand(
    src: &str,
    predicate: &str,
    dst: &str,
    direction: Direction,
    graph: &str,
) -> TriplePat {
    let (s, o) = match direction {
        Direction::Out => (src, dst),
        Direction::In => (dst, src),
    };
    let predicate = match predicate.strip_prefix('?') {
        Some(v) => Node::Var(v.to_string()),
        None => Node::Term(predicate.to_string()),
    };
    TriplePat {
        subject: Node::Var(s.to_string()),
        predicate,
        object: Node::Var(o.to_string()),
        graph: graph.to_string(),
    }
}

fn process_ops(graph: &KnowledgeGraph, ops: &[Operator]) -> Result<QueryModel> {
    let mut m = base_model(graph);
    let graph_uri = graph.uri().to_string();

    for op in ops {
        match op {
            Operator::Seed {
                subject,
                predicate,
                object,
            } => {
                m.triples.push(TriplePat {
                    subject: subject.clone(),
                    predicate: predicate.clone(),
                    object: object.clone(),
                    graph: graph_uri.clone(),
                });
            }
            Operator::Expand {
                src,
                predicate,
                dst,
                direction,
                optional,
            } => {
                // Case 1: expanding a grouped (or modifier-frozen) frame
                // requires evaluating the group first in a subquery.
                if m.is_grouped() || m.has_modifiers() {
                    m = m.wrapped();
                }
                let t = triple_for_expand(src, predicate, dst, *direction, &graph_uri);
                if *optional {
                    m.optionals.push(OptionalBlock {
                        triples: vec![t],
                        filters: vec![],
                    });
                } else {
                    m.triples.push(t);
                }
                // An explicit projection (select_cols) must grow to include
                // the newly navigated column.
                if !m.select.is_empty() && !m.select.contains(dst) {
                    m.select.push(dst.clone());
                }
            }
            Operator::Filter { column, conditions } => {
                let spec = FilterSpec::Col {
                    column: column.clone(),
                    conditions: conditions.clone(),
                };
                if m.is_grouped() {
                    if m.aggregates.iter().any(|a| &a.alias == column) {
                        // Filter on an aggregate value → HAVING.
                        m.having.push(spec);
                    } else {
                        // Case 1: filter on a grouping column after
                        // aggregation must apply to the grouped result.
                        m = m.wrapped();
                        m.filters.push(spec);
                    }
                } else {
                    if m.has_modifiers() {
                        m = m.wrapped();
                    }
                    m.filters.push(spec);
                }
            }
            Operator::FilterRaw(expr) => {
                if m.is_grouped() || m.has_modifiers() {
                    m = m.wrapped();
                }
                m.filters.push(FilterSpec::Raw(expr.clone()));
            }
            Operator::SelectCols(cols) => {
                if m.has_modifiers() {
                    m = m.wrapped();
                }
                m.select = cols.clone();
            }
            Operator::GroupBy(keys) => {
                if m.is_grouped() || m.has_modifiers() {
                    m = m.wrapped();
                }
                m.group_by = keys.clone();
            }
            Operator::Aggregation {
                func,
                src,
                alias,
                distinct,
            } => {
                if m.has_modifiers() {
                    return Err(FrameError::InvalidSequence(
                        "aggregation after sort/head is not supported".into(),
                    ));
                }
                m.aggregates.push(AggSpec {
                    func: *func,
                    distinct: *distinct,
                    src: src.clone(),
                    alias: alias.clone(),
                });
                // Grouped models project their keys + aggregates, DISTINCT,
                // matching the paper's generated queries.
                m.select = m.group_by.clone();
                m.select
                    .extend(m.aggregates.iter().map(|a| a.alias.clone()));
                m.distinct = true;
            }
            Operator::Join {
                other,
                col,
                col2,
                jtype,
                new_col,
            } => {
                let mut m2 = process_ops(other.graph(), other.operators())?;
                let join_name = new_col.clone().unwrap_or_else(|| col.clone());
                m.rename_var(col, &join_name);
                m2.rename_var(col2, &join_name);
                m = merge_join(m, m2, *jtype);
            }
            Operator::Sort(keys) => {
                m.order_by = keys.clone();
            }
            Operator::Head { k, offset } => {
                m.limit = Some(*k);
                if *offset > 0 {
                    m.offset = Some(*offset);
                }
            }
            Operator::Cache => {}
        }
    }
    Ok(m)
}

/// Join two query models per the paper's case analysis.
fn merge_join(mut m1: QueryModel, mut m2: QueryModel, jtype: JoinType) -> QueryModel {
    // Mutual context (prefixes, graph lists) must flow both ways.
    m1.absorb_context(&m2);
    m2.absorb_context(&m1);

    let n1 = m1.is_grouped() || m1.has_modifiers();
    let n2 = m2.is_grouped() || m2.has_modifiers();

    let select = merged_select(&m1, &m2);
    let limit = merge_limit(&m1, &m2);
    let offset = merge_offset(&m1, &m2);

    let mut result = match jtype {
        JoinType::Inner => match (n1, n2) {
            (false, false) => flat_merge(m1, m2),
            (true, false) => {
                // Case 2: grouped side nests inside the other.
                m2.subqueries.push(strip_modifier_merge(m1));
                m2
            }
            (false, true) => {
                m1.subqueries.push(strip_modifier_merge(m2));
                m1
            }
            (true, true) => {
                let mut outer = context_of(&m1);
                outer.subqueries.push(strip_modifier_merge(m1));
                outer.subqueries.push(strip_modifier_merge(m2));
                outer
            }
        },
        JoinType::Left => left_join(m1, m2, n1, n2),
        JoinType::Right => left_join(m2, m1, n2, n1),
        JoinType::Outer => {
            // Case 3: full outer join = UNION of the two left joins, with
            // both operands wrapped in nested queries.
            let b1 = left_join_nested(m1.clone(), m2.clone());
            let b2 = left_join_nested(m2.clone(), m1.clone());
            let mut outer = context_of(&m1);
            outer.unions.push(b1);
            outer.unions.push(b2);
            outer
        }
    };

    result.select = select;
    result.limit = limit;
    result.offset = offset;
    result.distinct = false;
    result
}

/// A fresh empty model inheriting prefixes/graphs.
fn context_of(m: &QueryModel) -> QueryModel {
    QueryModel {
        prefixes: m.prefixes.clone(),
        graphs: m.graphs.clone(),
        ..Default::default()
    }
}

/// When a model becomes a subquery operand its own modifiers stay inside,
/// which is exactly what wrapping already guarantees. This is the identity
/// today but kept as the single point where operand-level normalization
/// would go.
fn strip_modifier_merge(m: QueryModel) -> QueryModel {
    m
}

/// Flat merge of two non-nested models (inner join).
///
/// A side that carries a UNION (from an earlier full outer join) is nested
/// as a subquery rather than merged: unions must stay *first* within their
/// group because `OPTIONAL` elements rendered after them are left joins
/// against everything before, and flat-merging would reorder them.
fn flat_merge(mut m1: QueryModel, m2: QueryModel) -> QueryModel {
    if !m2.unions.is_empty() && m1.has_patterns() {
        m1.subqueries.push(m2);
        return m1;
    }
    if !m1.unions.is_empty() && !m2.unions.is_empty() {
        let mut outer = context_of(&m1);
        outer.subqueries.push(m1);
        outer.subqueries.push(m2);
        return outer;
    }
    m1.triples.extend(m2.triples);
    m1.filters.extend(m2.filters);
    m1.optionals.extend(m2.optionals);
    m1.subqueries.extend(m2.subqueries);
    m1.optional_subqueries.extend(m2.optional_subqueries);
    if m1.unions.is_empty() {
        m1.unions = m2.unions;
    }
    m1
}

/// m1 ⟕ m2, given each side's nesting requirement.
fn left_join(mut m1: QueryModel, m2: QueryModel, n1: bool, n2: bool) -> QueryModel {
    if n1 {
        m1 = m1.wrapped();
    }
    if !n2 && m2.is_simple() {
        m1.optionals.push(OptionalBlock {
            triples: m2.triples,
            filters: m2.filters,
        });
    } else {
        m1.optional_subqueries.push(m2);
    }
    m1
}

/// m1 ⟕ m2 with *both* operands as nested queries (used by full outer join,
/// matching the paper's Listing 4 shape).
fn left_join_nested(m1: QueryModel, m2: QueryModel) -> QueryModel {
    let mut outer = context_of(&m1);
    outer.subqueries.push(m1);
    outer.optional_subqueries.push(m2);
    outer
}

fn merged_select(m1: &QueryModel, m2: &QueryModel) -> Vec<String> {
    // Both sides SELECT * — the join stays *.
    if m1.select.is_empty() && m2.select.is_empty() {
        return Vec::new();
    }
    // At least one side has an explicit projection: the join's visible
    // columns are the union of both sides' columns, with any * side
    // resolved to its concrete visible variables (the paper: "unions the
    // selection variables of the two query models").
    let mut out = m1.visible_columns();
    for v in m2.visible_columns() {
        if !out.contains(&v) {
            out.push(v);
        }
    }
    out
}

fn merge_limit(m1: &QueryModel, m2: &QueryModel) -> Option<usize> {
    match (m1.limit, m2.limit) {
        (Some(a), Some(b)) => Some(a.max(b)),
        _ => None, // a limit inside one operand stays inside its subquery
    }
}

fn merge_offset(m1: &QueryModel, m2: &QueryModel) -> Option<usize> {
    match (m1.offset, m2.offset) {
        (Some(a), Some(b)) => Some(a.min(b)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::KnowledgeGraph;

    fn graph() -> KnowledgeGraph {
        KnowledgeGraph::new("http://dbpedia.org")
            .with_prefix("dbpp", "http://dbpedia.org/property/")
            .with_prefix("dbpr", "http://dbpedia.org/resource/")
    }

    #[test]
    fn seed_and_expand_stay_flat() {
        let f = graph()
            .feature_domain_range("dbpp:starring", "movie", "actor")
            .expand("actor", "dbpp:birthPlace", "country")
            .filter("country", &["=dbpr:United_States"]);
        let m = build_query_model(&f).unwrap();
        assert_eq!(m.triples.len(), 2);
        assert_eq!(m.filters.len(), 1);
        assert!(m.subqueries.is_empty());
    }

    #[test]
    fn filter_on_aggregate_becomes_having() {
        let f = graph()
            .feature_domain_range("dbpp:starring", "movie", "actor")
            .group_by(&["actor"])
            .count("movie", "movie_count", true)
            .filter("movie_count", &[">=50"]);
        let m = build_query_model(&f).unwrap();
        assert!(m.is_grouped());
        assert_eq!(m.having.len(), 1);
        assert!(m.subqueries.is_empty());
    }

    #[test]
    fn expand_after_group_nests() {
        // The motivating example's final step (paper Listing 1).
        let f = graph()
            .feature_domain_range("dbpp:starring", "movie", "actor")
            .group_by(&["actor"])
            .count("movie", "movie_count", true)
            .filter("movie_count", &[">=50"])
            .expand_in("actor", "dbpp:starring", "movie2");
        let m = build_query_model(&f).unwrap();
        assert!(!m.is_grouped());
        assert_eq!(m.subqueries.len(), 1);
        assert!(m.subqueries[0].is_grouped());
        assert_eq!(m.triples.len(), 1); // the new expand triple
    }

    #[test]
    fn filter_on_group_key_after_aggregation_nests() {
        let f = graph()
            .feature_domain_range("dbpp:starring", "movie", "actor")
            .group_by(&["actor"])
            .count("movie", "n", false)
            .filter("actor", &["isURI"]);
        let m = build_query_model(&f).unwrap();
        assert_eq!(m.subqueries.len(), 1);
        assert_eq!(m.filters.len(), 1);
    }

    #[test]
    fn join_grouped_with_flat_nests_grouped_side() {
        let g = graph();
        let movies = g.feature_domain_range("dbpp:starring", "movie", "actor");
        let prolific = movies
            .clone()
            .group_by(&["actor"])
            .count("movie", "n", true);
        let joined = movies.join(&prolific, "actor", crate::api::JoinType::Inner);
        let m = build_query_model(&joined).unwrap();
        assert_eq!(m.triples.len(), 1);
        assert_eq!(m.subqueries.len(), 1);
        assert!(m.subqueries[0].is_grouped());
    }

    #[test]
    fn full_outer_join_is_union_of_optionals() {
        let g = graph();
        let a = g.feature_domain_range("dbpp:starring", "movie", "actor");
        let b = g.feature_domain_range("dbpp:academyAward", "actor", "award");
        let j = a.join(&b, "actor", crate::api::JoinType::Outer);
        let m = build_query_model(&j).unwrap();
        assert_eq!(m.unions.len(), 2);
        for branch in &m.unions {
            assert_eq!(branch.subqueries.len(), 1);
            assert_eq!(branch.optional_subqueries.len(), 1);
        }
    }

    #[test]
    fn left_join_simple_becomes_optional_block() {
        let g = graph();
        let a = g.feature_domain_range("dbpp:starring", "movie", "actor");
        let b = g.feature_domain_range("dbpp:academyAward", "actor", "award");
        let j = a.join(&b, "actor", crate::api::JoinType::Left);
        let m = build_query_model(&j).unwrap();
        assert_eq!(m.optionals.len(), 1);
        assert!(m.optional_subqueries.is_empty());
    }

    #[test]
    fn join_on_renames_both_sides() {
        let g = graph();
        let a = g.feature_domain_range("dbpp:starring", "movie", "actor");
        let b = g.feature_domain_range("dbpp:birthPlace", "person", "place");
        let j = a.join_on(
            &b,
            "actor",
            "person",
            Some("star"),
            crate::api::JoinType::Inner,
        );
        let m = build_query_model(&j).unwrap();
        let rendered = super::super::render::render(&m);
        assert!(rendered.contains("?star"), "{rendered}");
        assert!(!rendered.contains("?person"), "{rendered}");
        assert!(!rendered.contains("?actor"), "{rendered}");
    }

    #[test]
    fn cross_graph_join_collects_graphs() {
        let dbp = graph();
        let yago = KnowledgeGraph::new("http://yago-knowledge.org")
            .with_prefix("y", "http://yago-knowledge.org/resource/");
        let a = dbp.feature_domain_range("dbpp:starring", "movie", "actor");
        let b = yago.seed("?actor", "rdf:type", "y:Actor");
        let j = a.join(&b, "actor", crate::api::JoinType::Inner);
        let m = build_query_model(&j).unwrap();
        assert_eq!(m.graphs.len(), 2);
        // Each triple remembers its origin graph.
        assert!(m
            .triples
            .iter()
            .any(|t| t.graph == "http://yago-knowledge.org"));
    }

    #[test]
    fn head_then_expand_wraps() {
        let f = graph()
            .feature_domain_range("dbpp:starring", "movie", "actor")
            .head(100)
            .expand("actor", "dbpp:birthPlace", "c");
        let m = build_query_model(&f).unwrap();
        assert_eq!(m.subqueries.len(), 1);
        assert_eq!(m.subqueries[0].limit, Some(100));
        assert!(m.limit.is_none());
    }
}
