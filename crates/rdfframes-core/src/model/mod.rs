//! The query model: RDFFrames' intermediate representation for SPARQL
//! queries (paper Figure 2 and Section 4.1).
//!
//! A [`QueryModel`] captures every component of a SPARQL SELECT query —
//! graph patterns (triples, filters, optional blocks, union branches,
//! subquery references), aggregation constructs (group-by keys, aggregate
//! columns, HAVING), and query modifiers (order, limit, offset) — and can be
//! nested for the cases where SPARQL requires a subquery.

pub mod compile;
pub mod generator;
pub mod naive;
pub mod render;

use std::collections::BTreeMap;

use crate::api::conditions::Condition;
use crate::api::operators::{AggFunc, Node, SortOrder};

/// A triple pattern in the model. `graph` carries the source graph URI so
/// cross-graph queries can wrap it in a `GRAPH` block.
#[derive(Debug, Clone, PartialEq)]
pub struct TriplePat {
    /// Subject.
    pub subject: Node,
    /// Predicate.
    pub predicate: Node,
    /// Object.
    pub object: Node,
    /// Graph this pattern matches against.
    pub graph: String,
}

/// A filter: structured (column + conditions) or raw SPARQL text.
#[derive(Debug, Clone, PartialEq)]
pub enum FilterSpec {
    /// Conditions on one column, ANDed.
    Col {
        /// Column name.
        column: String,
        /// Conjunctive conditions.
        conditions: Vec<Condition>,
    },
    /// Raw SPARQL boolean expression.
    Raw(String),
}

/// An `OPTIONAL { ... }` block of simple patterns.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OptionalBlock {
    /// Triple patterns inside the block.
    pub triples: Vec<TriplePat>,
    /// Filters inside the block.
    pub filters: Vec<FilterSpec>,
}

/// One aggregate column of a grouped model.
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    /// Aggregate function.
    pub func: AggFunc,
    /// `DISTINCT` inside the aggregate.
    pub distinct: bool,
    /// Source column.
    pub src: String,
    /// Output alias.
    pub alias: String,
}

impl AggSpec {
    /// Render the aggregate expression, e.g. `COUNT(DISTINCT ?movie)`.
    pub fn render_expr(&self) -> String {
        if self.distinct {
            format!("{}(DISTINCT ?{})", self.func.keyword(), self.src)
        } else {
            format!("{}(?{})", self.func.keyword(), self.src)
        }
    }
}

/// The query model. All vectors are in generation order; rendering walks
/// them in the order triples → subqueries → optional subqueries → optionals
/// → unions → filters, which mirrors the paper's generated queries.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryModel {
    /// Prefix declarations (rendered only on the outermost query).
    pub prefixes: BTreeMap<String, String>,
    /// Graph URIs contributing patterns. Single graph → `FROM`; several →
    /// per-pattern `GRAPH` wrapping.
    pub graphs: Vec<String>,
    /// Projected columns; empty means `SELECT *`.
    pub select: Vec<String>,
    /// `SELECT DISTINCT`.
    pub distinct: bool,
    /// Flat triple patterns.
    pub triples: Vec<TriplePat>,
    /// Group-level filters.
    pub filters: Vec<FilterSpec>,
    /// `OPTIONAL` blocks of plain patterns.
    pub optionals: Vec<OptionalBlock>,
    /// Nested subqueries (joined).
    pub subqueries: Vec<QueryModel>,
    /// Nested subqueries wrapped in `OPTIONAL`.
    pub optional_subqueries: Vec<QueryModel>,
    /// Union branches: non-empty means this model is a union of them (plus
    /// any of its own patterns joined in).
    pub unions: Vec<QueryModel>,
    /// Grouping keys.
    pub group_by: Vec<String>,
    /// Aggregate columns (presence marks the model *grouped*).
    pub aggregates: Vec<AggSpec>,
    /// HAVING constraints: conditions whose column names an aggregate alias.
    pub having: Vec<FilterSpec>,
    /// ORDER BY keys.
    pub order_by: Vec<(String, SortOrder)>,
    /// LIMIT.
    pub limit: Option<usize>,
    /// OFFSET.
    pub offset: Option<usize>,
}

impl QueryModel {
    /// Fresh empty model for a graph.
    pub fn for_graph(uri: &str) -> Self {
        QueryModel {
            graphs: vec![uri.to_string()],
            ..Default::default()
        }
    }

    /// Is this model grouped (has aggregation at its top level)?
    pub fn is_grouped(&self) -> bool {
        !self.aggregates.is_empty()
    }

    /// Does the model carry query modifiers that freeze it (further
    /// operators must wrap it in a subquery)?
    pub fn has_modifiers(&self) -> bool {
        self.limit.is_some() || self.offset.is_some() || !self.order_by.is_empty()
    }

    /// Does the model have any graph pattern content at all?
    pub fn has_patterns(&self) -> bool {
        !self.triples.is_empty()
            || !self.optionals.is_empty()
            || !self.subqueries.is_empty()
            || !self.optional_subqueries.is_empty()
            || !self.unions.is_empty()
    }

    /// Is the model "simple" — only flat triples and filters — so it can be
    /// merged into another model's pattern list (or an OPTIONAL block)
    /// without a nested subquery?
    pub fn is_simple(&self) -> bool {
        self.subqueries.is_empty()
            && self.optional_subqueries.is_empty()
            && self.unions.is_empty()
            && self.optionals.is_empty()
            && !self.is_grouped()
            && !self.distinct
            && !self.has_modifiers()
            && self.select.is_empty()
    }

    /// Wrap this model as the sole subquery of a fresh outer model,
    /// preserving prefixes and graphs (the paper's nesting step).
    pub fn wrapped(self) -> QueryModel {
        QueryModel {
            prefixes: self.prefixes.clone(),
            graphs: self.graphs.clone(),
            subqueries: vec![self],
            ..Default::default()
        }
    }

    /// The columns this model exposes: its explicit projection, or —
    /// for `SELECT *` — every variable visible in its patterns (recursing
    /// into subqueries, which expose only their own projections).
    pub fn visible_columns(&self) -> Vec<String> {
        if !self.select.is_empty() {
            return self.select.clone();
        }
        if self.is_grouped() {
            let mut names = self.group_by.clone();
            names.extend(self.aggregates.iter().map(|a| a.alias.clone()));
            return names;
        }
        let mut out: Vec<String> = Vec::new();
        let mut push = |v: String| {
            if !out.contains(&v) {
                out.push(v);
            }
        };
        let push_triple = |t: &TriplePat, push: &mut dyn FnMut(String)| {
            for n in [&t.subject, &t.predicate, &t.object] {
                if let Node::Var(v) = n {
                    push(v.clone());
                }
            }
        };
        for t in &self.triples {
            push_triple(t, &mut push);
        }
        for sub in &self.subqueries {
            for v in sub.visible_columns() {
                push(v);
            }
        }
        for branch in &self.unions {
            for v in branch.visible_columns() {
                push(v);
            }
        }
        for sub in &self.optional_subqueries {
            for v in sub.visible_columns() {
                push(v);
            }
        }
        for ob in &self.optionals {
            for t in &ob.triples {
                push_triple(t, &mut push);
            }
        }
        out
    }

    /// Rename a column everywhere in the model (used by join processing).
    pub fn rename_var(&mut self, from: &str, to: &str) {
        if from == to {
            return;
        }
        let fix_node = |n: &mut Node| {
            if let Node::Var(v) = n {
                if v == from {
                    *v = to.to_string();
                }
            }
        };
        let fix_name = |v: &mut String| {
            if v == from {
                *v = to.to_string();
            }
        };
        let fix_filter = |f: &mut FilterSpec| {
            if let FilterSpec::Col { column, .. } = f {
                if column == from {
                    *column = to.to_string();
                }
            }
        };
        for t in &mut self.triples {
            fix_node(&mut t.subject);
            fix_node(&mut t.predicate);
            fix_node(&mut t.object);
        }
        for f in &mut self.filters {
            fix_filter(f);
        }
        for ob in &mut self.optionals {
            for t in &mut ob.triples {
                fix_node(&mut t.subject);
                fix_node(&mut t.predicate);
                fix_node(&mut t.object);
            }
            for f in &mut ob.filters {
                fix_filter(f);
            }
        }
        for v in &mut self.select {
            fix_name(v);
        }
        for v in &mut self.group_by {
            fix_name(v);
        }
        for a in &mut self.aggregates {
            fix_name(&mut a.src);
            fix_name(&mut a.alias);
        }
        for h in &mut self.having {
            fix_filter(h);
        }
        for (v, _) in &mut self.order_by {
            fix_name(v);
        }
        for sub in &mut self.subqueries {
            sub.rename_var(from, to);
        }
        for sub in &mut self.optional_subqueries {
            sub.rename_var(from, to);
        }
        for sub in &mut self.unions {
            sub.rename_var(from, to);
        }
    }

    /// Merge prefix maps and graph lists from another model.
    pub fn absorb_context(&mut self, other: &QueryModel) {
        for (p, ns) in &other.prefixes {
            self.prefixes.entry(p.clone()).or_insert_with(|| ns.clone());
        }
        for g in &other.graphs {
            if !self.graphs.contains(g) {
                self.graphs.push(g.clone());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::conditions::Condition;

    fn var(v: &str) -> Node {
        Node::Var(v.to_string())
    }

    #[test]
    fn rename_reaches_every_component() {
        let mut m = QueryModel::for_graph("http://g");
        m.triples.push(TriplePat {
            subject: var("a"),
            predicate: Node::Term("p:x".into()),
            object: var("b"),
            graph: "http://g".into(),
        });
        m.filters.push(FilterSpec::Col {
            column: "a".into(),
            conditions: vec![Condition::IsUri],
        });
        m.select = vec!["a".into(), "b".into()];
        m.group_by = vec!["a".into()];
        m.aggregates.push(AggSpec {
            func: AggFunc::Count,
            distinct: false,
            src: "a".into(),
            alias: "n".into(),
        });
        let mut sub = QueryModel::for_graph("http://g");
        sub.triples.push(TriplePat {
            subject: var("a"),
            predicate: Node::Term("p:y".into()),
            object: var("c"),
            graph: "http://g".into(),
        });
        m.subqueries.push(sub);

        m.rename_var("a", "actor");
        assert_eq!(m.triples[0].subject, var("actor"));
        assert!(matches!(&m.filters[0], FilterSpec::Col { column, .. } if column == "actor"));
        assert_eq!(m.select, vec!["actor", "b"]);
        assert_eq!(m.group_by, vec!["actor"]);
        assert_eq!(m.aggregates[0].src, "actor");
        assert_eq!(m.subqueries[0].triples[0].subject, var("actor"));
    }

    #[test]
    fn wrapped_preserves_context() {
        let mut m = QueryModel::for_graph("http://g");
        m.prefixes.insert("p".into(), "http://p/".into());
        m.aggregates.push(AggSpec {
            func: AggFunc::Count,
            distinct: false,
            src: "x".into(),
            alias: "n".into(),
        });
        let w = m.clone().wrapped();
        assert_eq!(w.graphs, vec!["http://g"]);
        assert_eq!(w.prefixes.get("p").map(String::as_str), Some("http://p/"));
        assert!(!w.is_grouped());
        assert!(w.subqueries[0].is_grouped());
    }

    #[test]
    fn simplicity_checks() {
        let mut m = QueryModel::for_graph("http://g");
        assert!(m.is_simple());
        m.limit = Some(5);
        assert!(!m.is_simple());
        assert!(m.has_modifiers());
    }
}
