//! SPARQL rendering: the paper's *Translator* (Section 4.3).
//!
//! Walks a [`QueryModel`] and emits formatted SPARQL. Single-graph queries
//! use a `FROM` clause with plain patterns; cross-graph queries wrap every
//! pattern (recursively) in `GRAPH <uri>` blocks so each matches its origin
//! graph.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::api::operators::{Node, SortOrder};

use super::{FilterSpec, QueryModel, TriplePat};

/// Render a query model to SPARQL text.
pub fn render(model: &QueryModel) -> String {
    let mut graphs = BTreeSet::new();
    collect_graphs(model, &mut graphs);
    let multi_graph = graphs.len() > 1;

    let mut out = String::new();
    for (prefix, ns) in &model.prefixes {
        let _ = writeln!(out, "PREFIX {prefix}: <{ns}>");
    }
    render_select(model, &mut out, 0, true, multi_graph);
    out
}

fn collect_graphs(m: &QueryModel, out: &mut BTreeSet<String>) {
    for t in &m.triples {
        out.insert(t.graph.clone());
    }
    for ob in &m.optionals {
        for t in &ob.triples {
            out.insert(t.graph.clone());
        }
    }
    for sub in m
        .subqueries
        .iter()
        .chain(&m.optional_subqueries)
        .chain(&m.unions)
    {
        collect_graphs(sub, out);
    }
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

/// Render a node as a SPARQL term.
fn render_node(node: &Node) -> String {
    match node {
        Node::Var(v) => format!("?{v}"),
        Node::Term(t) => render_term(t),
    }
}

/// Render a constant written in API syntax.
pub(crate) fn render_term(t: &str) -> String {
    if t.starts_with('<') || t.starts_with('"') {
        return t.to_string();
    }
    if t.starts_with("http://") || t.starts_with("https://") || t.starts_with("urn:") {
        return format!("<{t}>");
    }
    if t.parse::<f64>().is_ok() {
        return t.to_string();
    }
    t.to_string() // CURIE
}

fn render_select(model: &QueryModel, out: &mut String, level: usize, top: bool, multi_graph: bool) {
    indent(out, level);
    out.push_str("SELECT ");
    if model.distinct {
        out.push_str("DISTINCT ");
    }
    let select_names: Vec<String> = if model.select.is_empty() {
        if model.is_grouped() {
            let mut names = model.group_by.clone();
            names.extend(model.aggregates.iter().map(|a| a.alias.clone()));
            names
        } else {
            Vec::new()
        }
    } else {
        model.select.clone()
    };
    if select_names.is_empty() {
        out.push('*');
    } else {
        let rendered: Vec<String> = select_names
            .iter()
            .map(
                |name| match model.aggregates.iter().find(|a| &a.alias == name) {
                    Some(agg) => format!("({} AS ?{})", agg.render_expr(), agg.alias),
                    None => format!("?{name}"),
                },
            )
            .collect();
        out.push_str(&rendered.join(" "));
    }
    out.push('\n');

    if top && !multi_graph {
        for g in &model.graphs {
            indent(out, level);
            let _ = writeln!(out, "FROM <{g}>");
        }
    }

    indent(out, level);
    out.push_str("WHERE {\n");
    render_body(model, out, level + 1, multi_graph);
    indent(out, level);
    out.push('}');
    out.push('\n');

    if !model.group_by.is_empty() {
        indent(out, level);
        let keys: Vec<String> = model.group_by.iter().map(|k| format!("?{k}")).collect();
        let _ = writeln!(out, "GROUP BY {}", keys.join(" "));
    }
    for h in &model.having {
        indent(out, level);
        let _ = writeln!(out, "HAVING ( {} )", render_having(model, h));
    }
    if !model.order_by.is_empty() {
        indent(out, level);
        let keys: Vec<String> = model
            .order_by
            .iter()
            .map(|(col, ord)| match ord {
                SortOrder::Asc => format!("ASC(?{col})"),
                SortOrder::Desc => format!("DESC(?{col})"),
            })
            .collect();
        let _ = writeln!(out, "ORDER BY {}", keys.join(" "));
    }
    if let Some(limit) = model.limit {
        indent(out, level);
        let _ = writeln!(out, "LIMIT {limit}");
    }
    if let Some(offset) = model.offset {
        indent(out, level);
        let _ = writeln!(out, "OFFSET {offset}");
    }
}

fn render_triples(triples: &[TriplePat], out: &mut String, level: usize, multi_graph: bool) {
    if !multi_graph {
        for t in triples {
            indent(out, level);
            let _ = writeln!(
                out,
                "{} {} {} .",
                render_node(&t.subject),
                render_node(&t.predicate),
                render_node(&t.object)
            );
        }
        return;
    }
    // Group consecutive same-graph triples into one GRAPH block.
    let mut i = 0;
    while i < triples.len() {
        let g = &triples[i].graph;
        let mut j = i;
        while j < triples.len() && &triples[j].graph == g {
            j += 1;
        }
        indent(out, level);
        let _ = writeln!(out, "GRAPH <{g}> {{");
        for t in &triples[i..j] {
            indent(out, level + 1);
            let _ = writeln!(
                out,
                "{} {} {} .",
                render_node(&t.subject),
                render_node(&t.predicate),
                render_node(&t.object)
            );
        }
        indent(out, level);
        out.push_str("}\n");
        i = j;
    }
}

fn render_filter(f: &FilterSpec) -> String {
    match f {
        FilterSpec::Col { column, conditions } => {
            let parts: Vec<String> = conditions.iter().map(|c| c.render(column)).collect();
            parts.join(" && ")
        }
        FilterSpec::Raw(raw) => raw.clone(),
    }
}

/// HAVING filters reference aggregate aliases; SPARQL requires the
/// aggregate *expression* there, so substitute it back in.
fn render_having(model: &QueryModel, f: &FilterSpec) -> String {
    match f {
        FilterSpec::Col { column, conditions } => {
            let lhs = match model.aggregates.iter().find(|a| &a.alias == column) {
                Some(agg) => agg.render_expr(),
                None => format!("?{column}"),
            };
            let parts: Vec<String> = conditions.iter().map(|c| c.render_with_lhs(&lhs)).collect();
            parts.join(" && ")
        }
        FilterSpec::Raw(raw) => raw.clone(),
    }
}

fn render_body(model: &QueryModel, out: &mut String, level: usize, multi_graph: bool) {
    render_triples(&model.triples, out, level, multi_graph);

    for sub in &model.subqueries {
        indent(out, level);
        out.push_str("{\n");
        render_select(sub, out, level + 1, false, multi_graph);
        indent(out, level);
        out.push_str("}\n");
    }
    // Unions render before any OPTIONALs: a union always originates from a
    // full-outer-join that *created* this model, so everything else in the
    // model was recorded later — and OPTIONAL (left join) is order-sensitive.
    if !model.unions.is_empty() {
        for (i, branch) in model.unions.iter().enumerate() {
            if i > 0 {
                indent(out, level);
                out.push_str("UNION\n");
            }
            indent(out, level);
            out.push_str("{\n");
            // A union branch is a full query model; render its body (or a
            // nested SELECT when it has its own projection/aggregation).
            if branch.is_grouped() || !branch.select.is_empty() || branch.has_modifiers() {
                render_select(branch, out, level + 1, false, multi_graph);
            } else {
                render_body(branch, out, level + 1, multi_graph);
            }
            indent(out, level);
            out.push_str("}\n");
        }
    }
    for sub in &model.optional_subqueries {
        indent(out, level);
        out.push_str("OPTIONAL {\n");
        render_select(sub, out, level + 1, false, multi_graph);
        indent(out, level);
        out.push_str("}\n");
    }
    for ob in &model.optionals {
        indent(out, level);
        out.push_str("OPTIONAL {\n");
        render_triples(&ob.triples, out, level + 1, multi_graph);
        for f in &ob.filters {
            indent(out, level + 1);
            let _ = writeln!(out, "FILTER ( {} )", render_filter(f));
        }
        indent(out, level);
        out.push_str("}\n");
    }
    for f in &model.filters {
        indent(out, level);
        let _ = writeln!(out, "FILTER ( {} )", render_filter(f));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::KnowledgeGraph;

    fn graph() -> KnowledgeGraph {
        KnowledgeGraph::new("http://dbpedia.org")
            .with_prefix("dbpp", "http://dbpedia.org/property/")
            .with_prefix("dbpr", "http://dbpedia.org/resource/")
    }

    #[test]
    fn renders_prefixes_from_and_patterns() {
        let f = graph()
            .feature_domain_range("dbpp:starring", "movie", "actor")
            .filter("actor", &["isURI"]);
        let q = f.to_sparql();
        assert!(
            q.contains("PREFIX dbpp: <http://dbpedia.org/property/>"),
            "{q}"
        );
        assert!(q.contains("FROM <http://dbpedia.org>"), "{q}");
        assert!(q.contains("?movie dbpp:starring ?actor ."), "{q}");
        assert!(q.contains("FILTER ( isIRI(?actor) )"), "{q}");
    }

    #[test]
    fn renders_group_and_having_with_expression() {
        let f = graph()
            .feature_domain_range("dbpp:starring", "movie", "actor")
            .group_by(&["actor"])
            .count("movie", "movie_count", true)
            .filter("movie_count", &[">=50"]);
        let q = f.to_sparql();
        assert!(
            q.contains("SELECT DISTINCT ?actor (COUNT(DISTINCT ?movie) AS ?movie_count)"),
            "{q}"
        );
        assert!(q.contains("GROUP BY ?actor"), "{q}");
        assert!(q.contains("HAVING ( COUNT(DISTINCT ?movie) >= 50 )"), "{q}");
    }

    #[test]
    fn renders_optional_blocks() {
        let f = graph()
            .feature_domain_range("dbpp:starring", "movie", "actor")
            .expand_optional("movie", "dbpp:genre", "genre");
        let q = f.to_sparql();
        assert!(q.contains("OPTIONAL {"), "{q}");
        assert!(q.contains("?movie dbpp:genre ?genre ."), "{q}");
    }

    #[test]
    fn renders_term_kinds() {
        assert_eq!(render_term("dbpr:USA"), "dbpr:USA");
        assert_eq!(render_term("http://x/a"), "<http://x/a>");
        assert_eq!(render_term("<http://x/a>"), "<http://x/a>");
        assert_eq!(render_term("\"lit\""), "\"lit\"");
        assert_eq!(render_term("42"), "42");
    }

    #[test]
    fn multi_graph_uses_graph_blocks() {
        let dbp = graph();
        let yago = KnowledgeGraph::new("http://yago-knowledge.org");
        let a = dbp.feature_domain_range("dbpp:starring", "movie", "actor");
        let b = yago.seed("?actor", "rdf:type", "<http://yago/Actor>");
        let j = a.join(&b, "actor", crate::api::JoinType::Inner);
        let q = j.to_sparql();
        assert!(q.contains("GRAPH <http://dbpedia.org> {"), "{q}");
        assert!(q.contains("GRAPH <http://yago-knowledge.org> {"), "{q}");
        assert!(!q.contains("FROM"), "{q}");
    }

    #[test]
    fn generated_sparql_parses_in_engine() {
        // Every shape we generate must be valid for the SPARQL engine.
        let g = graph();
        let movies = g.feature_domain_range("dbpp:starring", "movie", "actor");
        let frames = vec![
            movies.clone(),
            movies.clone().filter("actor", &["isURI"]),
            movies
                .clone()
                .expand_optional("movie", "dbpp:genre", "genre"),
            movies
                .clone()
                .group_by(&["actor"])
                .count("movie", "n", true)
                .filter("n", &[">=5"]),
            movies
                .clone()
                .group_by(&["actor"])
                .count("movie", "n", true)
                .expand("actor", "dbpp:birthPlace", "c"),
            movies.clone().join(
                &movies
                    .clone()
                    .group_by(&["actor"])
                    .count("movie", "n", false),
                "actor",
                crate::api::JoinType::Inner,
            ),
            movies.clone().join(
                &g.feature_domain_range("dbpp:academyAward", "actor", "award"),
                "actor",
                crate::api::JoinType::Outer,
            ),
            movies
                .clone()
                .sort(&[("movie", crate::api::SortOrder::Desc)])
                .head(10),
        ];
        for f in frames {
            let q = f.to_sparql();
            sparql_engine::parser::parse_query(&q)
                .unwrap_or_else(|e| panic!("engine rejected generated query:\n{q}\n{e}"));
        }
    }
}
