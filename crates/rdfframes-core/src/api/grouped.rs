//! Grouped frames: the result of `group_by`, awaiting aggregation.

use super::operators::{AggFunc, Operator};
use super::rdfframe::RDFFrame;

/// A frame whose last recorded operator is `group_by`; call an aggregation
/// method to obtain the grouped [`RDFFrame`] (paper:
/// `D.group_by(cols).aggregation(fn, col, new_col)`).
#[derive(Debug, Clone)]
pub struct GroupedRDFFrame {
    frame: RDFFrame,
}

impl GroupedRDFFrame {
    pub(crate) fn new(frame: RDFFrame) -> Self {
        GroupedRDFFrame { frame }
    }

    /// Generic aggregation.
    pub fn aggregation(self, func: AggFunc, src: &str, alias: &str, distinct: bool) -> RDFFrame {
        self.frame.agg(func, src, alias, distinct)
    }

    /// `COUNT(src) AS alias`; `distinct` adds `DISTINCT` inside the
    /// aggregate (the paper's `unique=True`).
    pub fn count(self, src: &str, alias: &str, distinct: bool) -> RDFFrame {
        self.aggregation(AggFunc::Count, src, alias, distinct)
    }

    /// `SUM(src) AS alias`.
    pub fn sum(self, src: &str, alias: &str) -> RDFFrame {
        self.aggregation(AggFunc::Sum, src, alias, false)
    }

    /// `AVG(src) AS alias`.
    pub fn avg(self, src: &str, alias: &str) -> RDFFrame {
        self.aggregation(AggFunc::Avg, src, alias, false)
    }

    /// `MIN(src) AS alias`.
    pub fn min(self, src: &str, alias: &str) -> RDFFrame {
        self.aggregation(AggFunc::Min, src, alias, false)
    }

    /// `MAX(src) AS alias`.
    pub fn max(self, src: &str, alias: &str) -> RDFFrame {
        self.aggregation(AggFunc::Max, src, alias, false)
    }

    /// `SAMPLE(src) AS alias`.
    pub fn sample(self, src: &str, alias: &str) -> RDFFrame {
        self.aggregation(AggFunc::Sample, src, alias, false)
    }

    /// Abandon the pending aggregation and recover the underlying frame
    /// (the grouping keys become a DISTINCT projection).
    pub fn into_frame(self) -> RDFFrame {
        self.frame
    }
}

/// The grouping keys recorded by the pending `group_by`.
impl GroupedRDFFrame {
    /// Grouping column names.
    pub fn keys(&self) -> Vec<String> {
        match self.frame.operators().last() {
            Some(Operator::GroupBy(keys)) => keys.clone(),
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::KnowledgeGraph;

    #[test]
    fn aggregation_methods_append_ops() {
        let g = KnowledgeGraph::new("http://x").with_prefix("p", "http://p/");
        let f = g
            .feature_domain_range("p:starring", "movie", "actor")
            .group_by(&["actor"]);
        assert_eq!(f.keys(), vec!["actor"]);
        let counted = f.count("movie", "n", true);
        match counted.operators().last() {
            Some(Operator::Aggregation {
                func,
                distinct,
                alias,
                ..
            }) => {
                assert_eq!(*func, AggFunc::Count);
                assert!(*distinct);
                assert_eq!(alias, "n");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn multiple_aggregations_chain() {
        let g = KnowledgeGraph::new("http://x").with_prefix("p", "http://p/");
        let f = g
            .seed("?paper", "p:year", "?year")
            .group_by(&["year"])
            .count("paper", "n", false)
            .agg(AggFunc::Min, "paper", "first_paper", false);
        assert_eq!(f.columns(), vec!["year", "n", "first_paper"]);
    }
}
