//! Knowledge-graph handles and RDFFrame initializers.

use std::sync::Arc;

use rdf_model::PrefixMap;

use super::operators::{Node, Operator};
use super::rdfframe::RDFFrame;

/// A reference to a knowledge graph stored in an RDF engine, identified by
/// its graph URI, plus the prefix declarations used by API calls.
///
/// This is a lightweight handle (paper Definition 1): no data is loaded; it
/// only names the graph that generated queries will address.
#[derive(Debug, Clone)]
pub struct KnowledgeGraph {
    inner: Arc<GraphInfo>,
}

#[derive(Debug)]
pub(crate) struct GraphInfo {
    pub(crate) uri: String,
    pub(crate) prefixes: PrefixMap,
}

impl KnowledgeGraph {
    /// Handle for the graph at `uri`, with the standard `rdf:`, `rdfs:`,
    /// `xsd:` prefixes pre-declared.
    pub fn new(uri: impl Into<String>) -> Self {
        KnowledgeGraph {
            inner: Arc::new(GraphInfo {
                uri: uri.into(),
                prefixes: PrefixMap::with_defaults(),
            }),
        }
    }

    /// Declare a prefix (builder style).
    pub fn with_prefix(self, prefix: &str, namespace: &str) -> Self {
        let mut info = GraphInfo {
            uri: self.inner.uri.clone(),
            prefixes: self.inner.prefixes.clone(),
        };
        info.prefixes.declare(prefix, namespace);
        KnowledgeGraph {
            inner: Arc::new(info),
        }
    }

    /// The graph URI.
    pub fn uri(&self) -> &str {
        &self.inner.uri
    }

    /// The declared prefixes.
    pub fn prefixes(&self) -> &PrefixMap {
        &self.inner.prefixes
    }

    /// The fundamental initializer (paper: `G.seed(col1, col2, col3)`):
    /// evaluates one triple pattern. Positions starting with `?` are
    /// columns; anything else is a constant (CURIE or IRI).
    ///
    /// ```
    /// # use rdfframes_core::api::KnowledgeGraph;
    /// let g = KnowledgeGraph::new("http://dbpedia.org");
    /// let instances = g.seed("?instance", "rdf:type", "dbpo:Film");
    /// ```
    pub fn seed(&self, subject: &str, predicate: &str, object: &str) -> RDFFrame {
        let node = |s: &str| match s.strip_prefix('?') {
            Some(v) => Node::Var(v.to_string()),
            None => Node::Term(s.to_string()),
        };
        RDFFrame::start(
            self.clone(),
            Operator::Seed {
                subject: node(subject),
                predicate: node(predicate),
                object: node(object),
            },
        )
    }

    /// All `(domain, range)` pairs connected by `predicate` — the
    /// `feature_domain_range` initializer from the paper's listings.
    pub fn feature_domain_range(&self, predicate: &str, domain: &str, range: &str) -> RDFFrame {
        self.seed(&format!("?{domain}"), predicate, &format!("?{range}"))
    }

    /// All instances of an RDF class: `entities('swrc:InProceedings',
    /// 'paper')`.
    pub fn entities(&self, class: &str, column: &str) -> RDFFrame {
        self.seed(&format!("?{column}"), "rdf:type", class)
    }

    /// Exploration operator: every class in the graph with its instance
    /// count, largest first. Returns a frame with columns `[class, frequency]`.
    pub fn classes_and_frequencies(&self) -> RDFFrame {
        self.seed("?instance", "rdf:type", "?class")
            .group_by(&["class"])
            .count("instance", "frequency", false)
            .sort(&[("frequency", super::SortOrder::Desc)])
    }

    /// Exploration operator: every predicate with its triple count, largest
    /// first. Returns a frame with columns `[predicate, frequency]`.
    pub fn predicates_and_frequencies(&self) -> RDFFrame {
        self.seed("?subject", "?predicate", "?object")
            .group_by(&["predicate"])
            .count("subject", "frequency", false)
            .sort(&[("frequency", super::SortOrder::Desc)])
    }

    /// Keyword-search exploration (the paper's stated future work,
    /// Section 7): entities whose `rdfs:label` matches `keyword`
    /// case-insensitively. Returns columns `[entity, label]`.
    pub fn search_by_label(&self, keyword: &str) -> RDFFrame {
        self.seed("?entity", "rdfs:label", "?label").filter(
            "label",
            &[&format!("regex(\"{}\", \"i\")", keyword.replace('"', ""))],
        )
    }

    /// Exploration operator: the predicates used by instances of a class,
    /// with usage counts — the "compute the data distributions of these
    /// classes" helper from Section 3.2. Columns `[predicate, frequency]`.
    pub fn class_predicates(&self, class: &str) -> RDFFrame {
        self.seed("?instance", "rdf:type", class)
            .expand_dir(
                "instance",
                "?predicate",
                "value",
                super::Direction::Out,
                false,
            )
            .group_by(&["predicate"])
            .count("instance", "frequency", false)
            .sort(&[("frequency", super::SortOrder::Desc)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_parses_vars_and_terms() {
        let g = KnowledgeGraph::new("http://dbpedia.org");
        let f = g.seed("?movie", "dbpp:starring", "?actor");
        assert_eq!(f.columns(), vec!["movie", "actor"]);
    }

    #[test]
    fn entities_uses_rdf_type() {
        let g = KnowledgeGraph::new("http://dblp.l3s.de");
        let f = g.entities("swrc:InProceedings", "paper");
        assert_eq!(f.columns(), vec!["paper"]);
        let sparql = f.to_sparql();
        assert!(sparql.contains("rdf:type"), "{sparql}");
    }

    #[test]
    fn prefixes_accumulate() {
        let g = KnowledgeGraph::new("http://x")
            .with_prefix("a", "http://a/")
            .with_prefix("b", "http://b/");
        assert_eq!(g.prefixes().namespace("a"), Some("http://a/"));
        assert_eq!(g.prefixes().namespace("b"), Some("http://b/"));
        assert_eq!(
            g.prefixes().namespace("rdf"),
            Some(rdf_model::vocab::rdf::NS)
        );
    }

    #[test]
    fn exploration_operators_generate_grouping() {
        let g = KnowledgeGraph::new("http://x");
        let classes = g.classes_and_frequencies();
        let q = classes.to_sparql();
        assert!(q.contains("GROUP BY ?class"), "{q}");
        assert!(q.contains("COUNT"), "{q}");
        assert!(q.contains("ORDER BY"), "{q}");
    }
}
