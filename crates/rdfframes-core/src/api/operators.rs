//! The operator vocabulary recorded by the Recorder.
//!
//! Each RDFFrame holds a FIFO queue of these; nothing touches the knowledge
//! graph until `execute` (lazy evaluation, Section 4.2 of the paper).

use super::conditions::Condition;
use super::rdfframe::RDFFrame;

/// A position in a seed triple pattern: a fresh column (variable) or a
/// constant (CURIE or absolute IRI, unexpanded — expansion happens at
/// translation when the prefix map is in scope).
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// Variable / column name.
    Var(String),
    /// Constant term written as in the API call (`dbpp:starring`,
    /// `<http://...>`, `"literal"`, `42`).
    Term(String),
}

impl Node {
    /// Variable name, if a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            Node::Var(v) => Some(v),
            Node::Term(_) => None,
        }
    }
}

/// Navigation direction for `expand` (paper: `dir ∈ {in, out}`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Follow the predicate from subject (source column) to object.
    Out,
    /// Follow the predicate from object (source column) to subject —
    /// `INCOMING` in the paper's listings.
    In,
}

/// Join types (paper: `jtype ∈ {⋈, ⟕, ⟖, ⟗}`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinType {
    /// Inner join.
    Inner,
    /// Left outer join.
    Left,
    /// Right outer join.
    Right,
    /// Full outer join (compiled to UNION of two OPTIONALs).
    Outer,
}

/// Aggregation functions (paper Section 3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT`.
    Count,
    /// `SUM`.
    Sum,
    /// `AVG`.
    Avg,
    /// `MIN`.
    Min,
    /// `MAX`.
    Max,
    /// `SAMPLE`.
    Sample,
}

impl AggFunc {
    /// SPARQL keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Sample => "SAMPLE",
        }
    }
}

/// Sort direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortOrder {
    /// Ascending.
    Asc,
    /// Descending.
    Desc,
}

/// One recorded operator.
#[derive(Debug, Clone, PartialEq)]
pub enum Operator {
    /// `G.seed(s, p, o)` — the mandatory first operator.
    Seed {
        /// Subject position.
        subject: Node,
        /// Predicate position.
        predicate: Node,
        /// Object position.
        object: Node,
    },
    /// `expand(src, pred, dst, dir, optional)`.
    Expand {
        /// Column navigated from.
        src: String,
        /// Predicate (CURIE or IRI).
        predicate: String,
        /// New column navigated to.
        dst: String,
        /// Direction.
        direction: Direction,
        /// OPTIONAL navigation (keeps rows without the edge).
        optional: bool,
    },
    /// `filter({col: [conds]})` for one column.
    Filter {
        /// Filtered column.
        column: String,
        /// Parsed conditions (conjunctive).
        conditions: Vec<Condition>,
    },
    /// A raw SPARQL filter expression (escape hatch, e.g.
    /// `year(xsd:dateTime(?date)) >= 2005`).
    FilterRaw(String),
    /// `select_cols(cols)`.
    SelectCols(Vec<String>),
    /// `group_by(cols)` — must be followed by an aggregation.
    GroupBy(Vec<String>),
    /// An aggregation attached to the preceding `group_by` (or standing
    /// alone for whole-frame `aggregate`).
    Aggregation {
        /// Aggregate function.
        func: AggFunc,
        /// Source column.
        src: String,
        /// Output column name.
        alias: String,
        /// `DISTINCT` within the aggregate.
        distinct: bool,
    },
    /// `join(other, col, col2, jtype, new_col)`.
    Join {
        /// The other frame (with its own recorded queue).
        other: RDFFrame,
        /// Join column in `self`.
        col: String,
        /// Join column in `other`.
        col2: String,
        /// Join type.
        jtype: JoinType,
        /// Name for the joined column (defaults to `col`).
        new_col: Option<String>,
    },
    /// `sort([(col, order)])`.
    Sort(Vec<(String, SortOrder)>),
    /// `head(k, offset)`.
    Head {
        /// Row count.
        k: usize,
        /// Starting row.
        offset: usize,
    },
    /// `cache()` — a logical marker with no effect on the generated query;
    /// in the paper's Python it shares the recorded prefix between frames,
    /// which Rust clones give us for free.
    Cache,
}

impl Operator {
    /// Columns introduced by this operator (used for validation).
    pub fn introduces(&self) -> Vec<&str> {
        match self {
            Operator::Seed {
                subject,
                predicate,
                object,
            } => [subject, predicate, object]
                .into_iter()
                .filter_map(Node::as_var)
                .collect(),
            Operator::Expand { dst, predicate, .. } => {
                let mut cols = vec![dst.as_str()];
                // A variable predicate (`?p`) binds a column too.
                if let Some(v) = predicate.strip_prefix('?') {
                    cols.push(v);
                }
                cols
            }
            Operator::Aggregation { alias, .. } => vec![alias],
            _ => vec![],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_introduces_vars_only() {
        let op = Operator::Seed {
            subject: Node::Var("movie".into()),
            predicate: Node::Term("dbpp:starring".into()),
            object: Node::Var("actor".into()),
        };
        assert_eq!(op.introduces(), vec!["movie", "actor"]);
    }

    #[test]
    fn agg_keywords() {
        assert_eq!(AggFunc::Count.keyword(), "COUNT");
        assert_eq!(AggFunc::Sample.keyword(), "SAMPLE");
    }
}
