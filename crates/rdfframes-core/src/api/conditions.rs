//! The filter-condition mini-language.
//!
//! The paper's API passes conditions as strings: `'>=50'`,
//! `'=dbpr:United_States'`, `'isURI'`, `'In(dblp:vldb, dblp:sigmod)'`,
//! `'regex(str(?c), "USA")'`. This module parses them into structured
//! [`Condition`]s so query generation can rename variables and render valid
//! SPARQL.

use crate::error::{FrameError, Result};

/// Comparison operators in conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// SPARQL spelling.
    pub fn sparql(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Neq => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// A literal/IRI value on the right-hand side of a condition, kept as the
/// user wrote it (CURIEs are expanded at render time by prefix declaration).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Numeric literal.
    Number(String),
    /// Quoted string literal (unquoted payload).
    String(String),
    /// IRI or CURIE.
    Iri(String),
}

impl Value {
    /// Render as a SPARQL token.
    pub fn render(&self) -> String {
        match self {
            Value::Number(n) => n.clone(),
            Value::String(s) => format!("\"{}\"", s.replace('"', "\\\"")),
            Value::Iri(i) => {
                if i.starts_with("http://") || i.starts_with("https://") {
                    format!("<{i}>")
                } else {
                    i.clone() // CURIE; prefixes declared in the query
                }
            }
        }
    }

    fn parse(raw: &str) -> Value {
        let raw = raw.trim();
        if let Some(stripped) = raw.strip_prefix('"').and_then(|r| r.strip_suffix('"')) {
            return Value::String(stripped.to_string());
        }
        if raw.parse::<f64>().is_ok() {
            return Value::Number(raw.to_string());
        }
        if let Some(inner) = raw.strip_prefix('<').and_then(|r| r.strip_suffix('>')) {
            return Value::Iri(inner.to_string());
        }
        Value::Iri(raw.to_string())
    }
}

/// One parsed filter condition on a column.
#[derive(Debug, Clone, PartialEq)]
pub enum Condition {
    /// `?col <op> value`.
    Cmp(CmpOp, Value),
    /// `isIRI(?col)`.
    IsUri,
    /// `isLiteral(?col)`.
    IsLiteral,
    /// `isBlank(?col)`.
    IsBlank,
    /// `bound(?col)`.
    Bound,
    /// `!bound(?col)`.
    NotBound,
    /// `regex(str(?col), pattern, flags)`.
    Regex {
        /// Pattern string.
        pattern: String,
        /// Flags (`i` etc.).
        flags: String,
    },
    /// `?col IN (v1, v2, ...)`.
    In(Vec<Value>),
    /// `?col NOT IN (...)`.
    NotIn(Vec<Value>),
    /// `year(xsd:dateTime(?col)) <op> n` — the date-column idiom from the
    /// paper's topic-modeling case study (written `year>=2005`).
    YearCmp(CmpOp, i64),
}

impl Condition {
    /// Parse one condition string as written in the paper's API.
    pub fn parse(raw: &str) -> Result<Condition> {
        let s = raw.trim();
        let lower = s.to_ascii_lowercase();
        if lower == "isuri" || lower == "isiri" {
            return Ok(Condition::IsUri);
        }
        if lower == "isliteral" {
            return Ok(Condition::IsLiteral);
        }
        if lower == "isblank" {
            return Ok(Condition::IsBlank);
        }
        if lower == "bound" {
            return Ok(Condition::Bound);
        }
        if lower == "!bound" || lower == "notbound" {
            return Ok(Condition::NotBound);
        }
        if let Some(rest) = strip_ci(s, "year") {
            let rest = rest.trim();
            for (text, op) in [
                (">=", CmpOp::Ge),
                ("<=", CmpOp::Le),
                ("!=", CmpOp::Neq),
                (">", CmpOp::Gt),
                ("<", CmpOp::Lt),
                ("=", CmpOp::Eq),
            ] {
                if let Some(num) = rest.strip_prefix(text) {
                    let year: i64 = num
                        .trim()
                        .parse()
                        .map_err(|_| FrameError::BadCondition(raw.to_string()))?;
                    return Ok(Condition::YearCmp(op, year));
                }
            }
            return Err(FrameError::BadCondition(raw.to_string()));
        }
        if let Some(rest) = strip_ci(s, "regex(") {
            let inner = rest
                .strip_suffix(')')
                .ok_or_else(|| FrameError::BadCondition(raw.to_string()))?;
            // Accept both `regex("USA")` and `regex("USA", "i")`.
            let parts = split_args(inner);
            let pattern = parts
                .first()
                .map(|p| unquote(p))
                .ok_or_else(|| FrameError::BadCondition(raw.to_string()))?;
            let flags = parts.get(1).map(|p| unquote(p)).unwrap_or_default();
            return Ok(Condition::Regex { pattern, flags });
        }
        if let Some(rest) = strip_ci(s, "notin(").or_else(|| strip_ci(s, "not in(")) {
            let inner = rest
                .strip_suffix(')')
                .ok_or_else(|| FrameError::BadCondition(raw.to_string()))?;
            return Ok(Condition::NotIn(
                split_args(inner).iter().map(|a| Value::parse(a)).collect(),
            ));
        }
        if let Some(rest) = strip_ci(s, "in(") {
            let inner = rest
                .strip_suffix(')')
                .ok_or_else(|| FrameError::BadCondition(raw.to_string()))?;
            return Ok(Condition::In(
                split_args(inner).iter().map(|a| Value::parse(a)).collect(),
            ));
        }
        for (text, op) in [
            (">=", CmpOp::Ge),
            ("<=", CmpOp::Le),
            ("!=", CmpOp::Neq),
            (">", CmpOp::Gt),
            ("<", CmpOp::Lt),
            ("=", CmpOp::Eq),
        ] {
            if let Some(rest) = s.strip_prefix(text) {
                if rest.trim().is_empty() {
                    return Err(FrameError::BadCondition(raw.to_string()));
                }
                return Ok(Condition::Cmp(op, Value::parse(rest)));
            }
        }
        // A bare value is shorthand for equality.
        if !s.is_empty() {
            return Ok(Condition::Cmp(CmpOp::Eq, Value::parse(s)));
        }
        Err(FrameError::BadCondition(raw.to_string()))
    }

    /// Render the condition as a SPARQL boolean expression on `?column`.
    pub fn render(&self, column: &str) -> String {
        self.render_with_lhs(&format!("?{column}"))
    }

    /// Render with an explicit left-hand side (used by HAVING, where the
    /// aggregate expression replaces the alias variable).
    pub fn render_with_lhs(&self, lhs: &str) -> String {
        match self {
            Condition::Cmp(op, v) => format!("{lhs} {} {}", op.sparql(), v.render()),
            Condition::IsUri => format!("isIRI({lhs})"),
            Condition::IsLiteral => format!("isLiteral({lhs})"),
            Condition::IsBlank => format!("isBlank({lhs})"),
            Condition::Bound => format!("bound({lhs})"),
            Condition::NotBound => format!("!bound({lhs})"),
            Condition::Regex { pattern, flags } => {
                if flags.is_empty() {
                    format!("regex(str({lhs}), \"{pattern}\")")
                } else {
                    format!("regex(str({lhs}), \"{pattern}\", \"{flags}\")")
                }
            }
            Condition::In(values) => {
                let items: Vec<String> = values.iter().map(Value::render).collect();
                format!("{lhs} IN ({})", items.join(", "))
            }
            Condition::NotIn(values) => {
                let items: Vec<String> = values.iter().map(Value::render).collect();
                format!("{lhs} NOT IN ({})", items.join(", "))
            }
            Condition::YearCmp(op, year) => {
                format!("year(xsd:dateTime({lhs})) {} {year}", op.sparql())
            }
        }
    }
}

fn strip_ci<'a>(s: &'a str, prefix: &str) -> Option<&'a str> {
    if s.len() >= prefix.len() && s[..prefix.len()].eq_ignore_ascii_case(prefix) {
        Some(&s[prefix.len()..])
    } else {
        None
    }
}

fn unquote(s: &str) -> String {
    let s = s.trim();
    s.strip_prefix('"')
        .and_then(|x| x.strip_suffix('"'))
        .unwrap_or(s)
        .to_string()
}

/// Split comma-separated args, respecting quotes.
fn split_args(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut current = String::new();
    let mut in_quotes = false;
    for c in s.chars() {
        match c {
            '"' => {
                in_quotes = !in_quotes;
                current.push(c);
            }
            ',' if !in_quotes => out.push(std::mem::take(&mut current).trim().to_string()),
            _ => current.push(c),
        }
    }
    let last = current.trim().to_string();
    if !last.is_empty() {
        out.push(last);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_numbers() {
        let c = Condition::parse(">=50").unwrap();
        assert_eq!(c, Condition::Cmp(CmpOp::Ge, Value::Number("50".into())));
        assert_eq!(c.render("movie_count"), "?movie_count >= 50");
    }

    #[test]
    fn equality_curie() {
        let c = Condition::parse("=dbpr:United_States").unwrap();
        assert_eq!(c.render("country"), "?country = dbpr:United_States");
    }

    #[test]
    fn equality_absolute_iri() {
        let c = Condition::parse("=http://dbpedia.org/resource/USA").unwrap();
        assert_eq!(c.render("c"), "?c = <http://dbpedia.org/resource/USA>");
    }

    #[test]
    fn bare_value_is_equality() {
        let c = Condition::parse("dbpr:X").unwrap();
        assert_eq!(c.render("c"), "?c = dbpr:X");
    }

    #[test]
    fn string_values_quoted() {
        let c = Condition::parse("=\"drama\"").unwrap();
        assert_eq!(c.render("genre"), "?genre = \"drama\"");
    }

    #[test]
    fn type_checks() {
        assert_eq!(Condition::parse("isURI").unwrap(), Condition::IsUri);
        assert_eq!(Condition::parse("isLiteral").unwrap(), Condition::IsLiteral);
        assert_eq!(
            Condition::parse("isURI").unwrap().render("obj"),
            "isIRI(?obj)"
        );
    }

    #[test]
    fn regex_condition() {
        let c = Condition::parse("regex(\"USA\")").unwrap();
        assert_eq!(c.render("c"), "regex(str(?c), \"USA\")");
        let c = Condition::parse("regex(\"usa\", \"i\")").unwrap();
        assert_eq!(c.render("c"), "regex(str(?c), \"usa\", \"i\")");
    }

    #[test]
    fn in_list() {
        let c = Condition::parse("In(dblp:vldb, dblp:sigmod)").unwrap();
        assert_eq!(
            c.render("conference"),
            "?conference IN (dblp:vldb, dblp:sigmod)"
        );
        let c = Condition::parse("NotIn(dbpr:Eskay_Movies)").unwrap();
        assert_eq!(c.render("studio"), "?studio NOT IN (dbpr:Eskay_Movies)");
    }

    #[test]
    fn year_comparison() {
        let c = Condition::parse("year>=2005").unwrap();
        assert_eq!(c, Condition::YearCmp(CmpOp::Ge, 2005));
        assert_eq!(c.render("date"), "year(xsd:dateTime(?date)) >= 2005");
        assert!(Condition::parse("year>=twenty").is_err());
    }

    #[test]
    fn bad_conditions_rejected() {
        assert!(Condition::parse("").is_err());
        assert!(Condition::parse(">=").is_err());
        assert!(Condition::parse("regex(\"unterminated\"").is_err());
    }
}
