//! The [`RDFFrame`]: a lazy logical description of a table extracted from a
//! knowledge graph.
//!
//! Every method call appends an operator to the frame's FIFO queue (the
//! paper's *Recorder*); nothing executes until [`RDFFrame::execute`], which
//! triggers query-model generation, SPARQL translation, and endpoint
//! execution.

use dataframe::DataFrame;

use crate::client::Endpoint;
use crate::error::Result;
use crate::exec::Executor;
use crate::model::{generator, render};

use super::conditions::Condition;
use super::grouped::GroupedRDFFrame;
use super::knowledge_graph::KnowledgeGraph;
use super::operators::{AggFunc, Direction, JoinType, Operator, SortOrder};

/// A logical table described by a sequence of recorded operators
/// (paper Definition 2 + Section 4.2).
#[derive(Debug, Clone, PartialEq)]
pub struct RDFFrame {
    graph: KnowledgeGraph,
    ops: Vec<Operator>,
}

impl PartialEq for KnowledgeGraph {
    fn eq(&self, other: &Self) -> bool {
        self.uri() == other.uri()
    }
}

impl RDFFrame {
    pub(crate) fn start(graph: KnowledgeGraph, seed: Operator) -> Self {
        RDFFrame {
            graph,
            ops: vec![seed],
        }
    }

    /// Reconstruct a frame from an explicit operator queue (advanced; used
    /// by evaluation baselines that split a pipeline into a navigational
    /// prefix and a client-side relational suffix).
    pub fn from_operators(graph: KnowledgeGraph, ops: Vec<Operator>) -> Self {
        RDFFrame { graph, ops }
    }

    /// The knowledge graph this frame reads from.
    pub fn graph(&self) -> &KnowledgeGraph {
        &self.graph
    }

    /// The recorded operator queue (read-only).
    pub fn operators(&self) -> &[Operator] {
        &self.ops
    }

    fn push(mut self, op: Operator) -> Self {
        self.ops.push(op);
        self
    }

    /// Column names this frame would produce.
    pub fn columns(&self) -> Vec<String> {
        columns_of(&self.ops)
    }

    fn assert_column(&self, col: &str) {
        let cols = self.columns();
        assert!(
            cols.iter().any(|c| c == col),
            "unknown column '{col}' (frame has {cols:?})"
        );
    }

    // ---- navigational operators -------------------------------------

    /// Navigate out along `predicate` from `src` into a new column `dst`
    /// (required edge: rows without it are dropped).
    pub fn expand(self, src: &str, predicate: &str, dst: &str) -> Self {
        self.expand_dir(src, predicate, dst, Direction::Out, false)
    }

    /// Navigate with explicit direction and optionality (paper:
    /// `expand(col, pred, new_col, dir, is_opt)`).
    pub fn expand_dir(
        self,
        src: &str,
        predicate: &str,
        dst: &str,
        direction: Direction,
        optional: bool,
    ) -> Self {
        self.assert_column(src);
        self.push(Operator::Expand {
            src: src.to_string(),
            predicate: predicate.to_string(),
            dst: dst.to_string(),
            direction,
            optional,
        })
    }

    /// Optional outgoing navigation (keeps rows lacking the edge, with a
    /// null in `dst`).
    pub fn expand_optional(self, src: &str, predicate: &str, dst: &str) -> Self {
        self.expand_dir(src, predicate, dst, Direction::Out, true)
    }

    /// Incoming navigation (`INCOMING` in the paper's listings): `dst` is
    /// the *subject* of the matched triples.
    pub fn expand_in(self, src: &str, predicate: &str, dst: &str) -> Self {
        self.expand_dir(src, predicate, dst, Direction::In, false)
    }

    // ---- relational operators ----------------------------------------

    /// Filter rows by conditions on one column (conditions are conjunctive).
    ///
    /// # Panics
    /// Panics on an unparsable condition string; use [`RDFFrame::try_filter`]
    /// for a fallible variant.
    pub fn filter(self, column: &str, conditions: &[&str]) -> Self {
        self.try_filter(column, conditions)
            .expect("invalid filter condition")
    }

    /// Fallible [`RDFFrame::filter`].
    pub fn try_filter(self, column: &str, conditions: &[&str]) -> Result<Self> {
        self.assert_column(column);
        let parsed: Result<Vec<Condition>> =
            conditions.iter().map(|c| Condition::parse(c)).collect();
        Ok(self.push(Operator::Filter {
            column: column.to_string(),
            conditions: parsed?,
        }))
    }

    /// Attach a raw SPARQL filter expression (escape hatch for expressions
    /// the condition mini-language can't say, e.g.
    /// `year(xsd:dateTime(?date)) >= 2005`).
    pub fn filter_raw(self, expression: &str) -> Self {
        self.push(Operator::FilterRaw(expression.to_string()))
    }

    /// Keep only the given columns (paper: `select_cols`).
    pub fn select_cols(self, cols: &[&str]) -> Self {
        for c in cols {
            self.assert_column(c);
        }
        self.push(Operator::SelectCols(
            cols.iter().map(|s| s.to_string()).collect(),
        ))
    }

    /// Group by columns; returns a [`GroupedRDFFrame`] whose aggregation
    /// methods (`count`, `sum`, ...) produce the grouped frame.
    pub fn group_by(self, cols: &[&str]) -> GroupedRDFFrame {
        for c in cols {
            self.assert_column(c);
        }
        GroupedRDFFrame::new(self.push(Operator::GroupBy(
            cols.iter().map(|s| s.to_string()).collect(),
        )))
    }

    /// Whole-frame aggregate (paper: `aggregate(fn, col, new_col)`): one row,
    /// one column. No further operators may follow.
    pub fn aggregate(self, func: AggFunc, src: &str, alias: &str) -> Self {
        self.assert_column(src);
        self.push(Operator::Aggregation {
            func,
            src: src.to_string(),
            alias: alias.to_string(),
            distinct: false,
        })
    }

    /// Append an additional aggregation to a grouped frame (allows multiple
    /// aggregates over one `group_by`).
    pub fn agg(self, func: AggFunc, src: &str, alias: &str, distinct: bool) -> Self {
        self.push(Operator::Aggregation {
            func,
            src: src.to_string(),
            alias: alias.to_string(),
            distinct,
        })
    }

    /// Join with another frame on a same-named column.
    pub fn join(self, other: &RDFFrame, col: &str, jtype: JoinType) -> Self {
        self.join_on(other, col, col, None, jtype)
    }

    /// Join with full control (paper: `join(D2, col, col2, jtype,
    /// new_col)`).
    pub fn join_on(
        self,
        other: &RDFFrame,
        col: &str,
        col2: &str,
        new_col: Option<&str>,
        jtype: JoinType,
    ) -> Self {
        self.assert_column(col);
        self.push(Operator::Join {
            other: other.clone(),
            col: col.to_string(),
            col2: col2.to_string(),
            jtype,
            new_col: new_col.map(|s| s.to_string()),
        })
    }

    /// Sort by columns.
    pub fn sort(self, keys: &[(&str, SortOrder)]) -> Self {
        self.push(Operator::Sort(
            keys.iter().map(|(c, o)| (c.to_string(), *o)).collect(),
        ))
    }

    /// First `k` rows.
    pub fn head(self, k: usize) -> Self {
        self.push(Operator::Head { k, offset: 0 })
    }

    /// `k` rows starting at `offset` (paper: `head(k, i)`).
    pub fn head_offset(self, k: usize, offset: usize) -> Self {
        self.push(Operator::Head { k, offset })
    }

    /// Logical marker matching the paper's `.cache()`; recording is
    /// value-semantic in Rust so this is a no-op kept for listing parity.
    pub fn cache(self) -> Self {
        self.push(Operator::Cache)
    }

    // ---- query generation & execution ---------------------------------

    /// Generate the optimized SPARQL query for this frame (the paper's
    /// Generator + Translator pipeline).
    pub fn to_sparql(&self) -> String {
        self.try_to_sparql().expect("query generation failed")
    }

    /// Fallible [`RDFFrame::to_sparql`].
    pub fn try_to_sparql(&self) -> Result<String> {
        let model = generator::build_query_model(self)?;
        Ok(render::render(&model))
    }

    /// Generate the *naive* SPARQL query (one subquery per operator) — the
    /// "Naive Query Generation" baseline of Section 6.3.
    pub fn to_naive_sparql(&self) -> String {
        self.try_to_naive_sparql().expect("query generation failed")
    }

    /// Fallible [`RDFFrame::to_naive_sparql`].
    pub fn try_to_naive_sparql(&self) -> Result<String> {
        let model = crate::model::naive::build_naive_model(self)?;
        Ok(render::render(&model))
    }

    /// Execute on an endpoint and return the result dataframe. This is the
    /// paper's special `execute` call that ends the lazy pipeline.
    pub fn execute<E: Endpoint + ?Sized>(&self, endpoint: &E) -> Result<DataFrame> {
        Executor::new().execute(self, endpoint)
    }

    /// Execute the naive translation (baseline measurement).
    pub fn execute_naive<E: Endpoint + ?Sized>(&self, endpoint: &E) -> Result<DataFrame> {
        Executor::new().execute_naive(self, endpoint)
    }
}

/// Compute the visible columns after a sequence of operators.
pub(crate) fn columns_of(ops: &[Operator]) -> Vec<String> {
    let mut cols: Vec<String> = Vec::new();
    let push = |cols: &mut Vec<String>, c: &str| {
        if !cols.iter().any(|x| x == c) {
            cols.push(c.to_string());
        }
    };
    for op in ops {
        match op {
            Operator::Seed { .. } | Operator::Expand { .. } => {
                for c in op.introduces() {
                    push(&mut cols, c);
                }
            }
            Operator::SelectCols(keep) => {
                cols.retain(|c| keep.contains(c));
            }
            Operator::GroupBy(keys) => {
                cols = keys.clone();
            }
            Operator::Aggregation { alias, .. } => push(&mut cols, alias),
            Operator::Join {
                other,
                col,
                col2,
                new_col,
                ..
            } => {
                let join_name = new_col.clone().unwrap_or_else(|| col.clone());
                // Rename self's join column.
                for c in cols.iter_mut() {
                    if c == col {
                        *c = join_name.clone();
                    }
                }
                for oc in columns_of(&other.ops) {
                    let name = if oc == *col2 { join_name.clone() } else { oc };
                    push(&mut cols, &name);
                }
            }
            Operator::Filter { .. }
            | Operator::FilterRaw(_)
            | Operator::Sort(_)
            | Operator::Head { .. }
            | Operator::Cache => {}
        }
    }
    cols
}

/// Is a frame (by its operator queue) *grouped* — i.e. its top-level query
/// model carries aggregates that haven't been wrapped by later operators?
pub fn ends_grouped(ops: &[Operator]) -> bool {
    let mut grouped = false;
    for op in ops {
        match op {
            Operator::GroupBy(_) | Operator::Aggregation { .. } => grouped = true,
            // Operators the generator handles inside the grouped model keep
            // it grouped; ones that force wrapping clear the flag.
            Operator::Filter { column, .. } if grouped && !is_agg_alias(ops, column) => {
                grouped = false; // wrapped (case 1)
            }
            Operator::Expand { .. } | Operator::Join { .. } if grouped => {
                grouped = false;
            }
            _ => {}
        }
    }
    grouped
}

/// Does any recorded aggregation name this column as its alias?
pub fn is_agg_alias(ops: &[Operator], column: &str) -> bool {
    ops.iter()
        .any(|op| matches!(op, Operator::Aggregation { alias, .. } if alias == column))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph() -> KnowledgeGraph {
        KnowledgeGraph::new("http://dbpedia.org")
            .with_prefix("dbpp", "http://dbpedia.org/property/")
            .with_prefix("dbpr", "http://dbpedia.org/resource/")
    }

    #[test]
    fn columns_track_operators() {
        let g = graph();
        let f = g
            .feature_domain_range("dbpp:starring", "movie", "actor")
            .expand("actor", "dbpp:birthPlace", "country");
        assert_eq!(f.columns(), vec!["movie", "actor", "country"]);
        let g2 = f.clone().group_by(&["actor"]).count("movie", "n", true);
        assert_eq!(g2.columns(), vec!["actor", "n"]);
        let sel = f.select_cols(&["movie"]);
        assert_eq!(sel.columns(), vec!["movie"]);
    }

    #[test]
    #[should_panic(expected = "unknown column")]
    fn expand_from_missing_column_panics() {
        let g = graph();
        let _ = g
            .feature_domain_range("dbpp:starring", "movie", "actor")
            .expand("nope", "dbpp:birthPlace", "c");
    }

    #[test]
    fn join_renames_columns() {
        let g = graph();
        let a = g.feature_domain_range("dbpp:starring", "movie", "actor");
        let b = g.feature_domain_range("dbpp:birthPlace", "person", "place");
        let j = a.join_on(&b, "actor", "person", Some("who"), JoinType::Inner);
        let cols = j.columns();
        assert!(cols.contains(&"who".to_string()), "{cols:?}");
        assert!(!cols.contains(&"person".to_string()));
        assert!(cols.contains(&"place".to_string()));
    }

    #[test]
    fn grouped_state_tracking() {
        let g = graph();
        let f = g.feature_domain_range("dbpp:starring", "movie", "actor");
        let grouped = f.clone().group_by(&["actor"]).count("movie", "n", false);
        assert!(ends_grouped(grouped.operators()));
        // Filter on the aggregate keeps it grouped (HAVING).
        let havinged = grouped.clone().filter("n", &[">=5"]);
        assert!(ends_grouped(havinged.operators()));
        // Expanding after grouping wraps (no longer grouped at top).
        let expanded = grouped.expand("actor", "dbpp:birthPlace", "c");
        assert!(!ends_grouped(expanded.operators()));
    }

    #[test]
    fn operators_recorded_in_fifo_order() {
        let g = graph();
        let f = g
            .feature_domain_range("dbpp:starring", "movie", "actor")
            .filter("actor", &["isURI"])
            .head(10);
        let kinds: Vec<&str> = f
            .operators()
            .iter()
            .map(|op| match op {
                Operator::Seed { .. } => "seed",
                Operator::Filter { .. } => "filter",
                Operator::Head { .. } => "head",
                _ => "other",
            })
            .collect();
        assert_eq!(kinds, vec!["seed", "filter", "head"]);
    }
}
