//! The RDFFrames user API: knowledge-graph initializers, the lazy
//! [`RDFFrame`] operators, and the condition mini-language.

pub mod conditions;
pub mod grouped;
pub mod knowledge_graph;
pub mod operators;
pub mod rdfframe;

pub use conditions::Condition;
pub use grouped::GroupedRDFFrame;
pub use knowledge_graph::KnowledgeGraph;
pub use operators::{AggFunc, Direction, JoinType, Node, Operator, SortOrder};
pub use rdfframe::RDFFrame;
