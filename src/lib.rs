//! # RDFFrames (Rust)
//!
//! A reproduction of *"RDFFrames: Knowledge Graph Access for Machine
//! Learning Tools"* (VLDB 2020) as a Rust workspace. This facade crate
//! re-exports the public API of every workspace member so applications can
//! depend on a single crate:
//!
//! - [`api`] — the RDFFrames user API (the paper's contribution):
//!   [`api::KnowledgeGraph`], [`api::RDFFrame`], lazy operators, SPARQL
//!   generation, execution.
//! - [`engine`] — the in-memory SPARQL engine substrate (Virtuoso stand-in).
//! - [`rdf`] — the RDF data model: terms, graphs, datasets, N-Triples.
//! - [`df`] — the dataframe library (pandas stand-in).
//! - [`datagen`] — synthetic DBpedia/DBLP/YAGO-like graph generators.
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use rdfframes::api::KnowledgeGraph;
//! use rdfframes::datagen::{generate_dbpedia, DbpediaConfig};
//! use rdfframes::rdf::Dataset;
//! use rdfframes::InProcessEndpoint;
//!
//! // Stand up an engine over a synthetic DBpedia-like graph.
//! let mut dataset = Dataset::new();
//! dataset.insert_graph("http://dbpedia.org", generate_dbpedia(&DbpediaConfig::tiny()));
//! let endpoint = InProcessEndpoint::new(Arc::new(dataset));
//!
//! // Describe the dataframe lazily, then execute.
//! let graph = KnowledgeGraph::new("http://dbpedia.org")
//!     .with_prefix("dbpp", "http://dbpedia.org/property/")
//!     .with_prefix("dbpr", "http://dbpedia.org/resource/");
//! let df = graph
//!     .feature_domain_range("dbpp:starring", "movie", "actor")
//!     .expand("actor", "dbpp:birthPlace", "country")
//!     .filter("country", &["=dbpr:United_States"])
//!     .execute(&endpoint)
//!     .unwrap();
//! assert_eq!(df.columns(), &["movie", "actor", "country"]);
//! assert!(df.len() > 0);
//! ```

pub use dataframe as df;
pub use kg_datagen as datagen;
pub use rdf_model as rdf;
pub use rdfframes_core::api;
pub use rdfframes_core::reference;
pub use sparql_engine as engine;

pub use rdfframes_core::{
    AggFunc, Completeness, Direction, EmbeddedEndpoint, Endpoint, EndpointConfig, EndpointStats,
    Executor, Fault, FaultyEndpoint, FrameError, InProcessEndpoint, JoinType, KnowledgeGraph,
    PartialFrame, RDFFrame, RetryPolicy, SortOrder, WireFormat,
};
